// Package chaos is the deterministic fault-injection engine for the cluster
// simulator and the lucidd control plane. It models the failure classes that
// dominate wasted GPU-time in production datacenters (Hu et al.'s
// characterization, PAPERS.md): node crashes that revoke capacity for a
// repair window and kill every resident job, transient GPU faults that kill
// residents without revoking capacity, per-step job crashes with a retry
// budget, and straggler nodes running at a degraded per-GPU speed.
//
// Determinism is the design center. Faults are not drawn from a shared
// stream (which would make them order-dependent); each potential fault is an
// independent Bernoulli trial keyed by (seed, fault kind, entity id, tick)
// through a stateless splitmix64-style hash. Two runs with the same seed and
// spec therefore produce the identical fault schedule regardless of map
// iteration order, goroutine interleaving, or how many other entities exist
// — the property the golden-trace chaos determinism tests lock in.
//
// The package knows nothing about jobs or scheduling. The simulator
// (internal/sim) asks "which nodes crash this tick?" and owns the recovery
// half: killing residents, voiding or restoring checkpoints, and requeueing
// with backoff.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// Spec configures the fault model. Rates are expected events per entity per
// day, so they compose naturally with the characterization literature
// (failures/day per node, crashes/day per job) and stay tick-size
// independent: per tick of dt seconds the Bernoulli probability is
// rate·dt/86400, clamped to 1.
type Spec struct {
	// Seed keys the fault schedule. Same seed + same spec = same faults.
	Seed uint64

	// NodeFailPerDay is the per-node crash rate. A crash kills every job
	// resident on the node and revokes its capacity for RepairSec seconds.
	NodeFailPerDay float64
	// RepairSec is how long a crashed node stays out of service.
	RepairSec int64

	// GPUFailPerDay is the per-GPU transient-fault rate (ECC error, Xid,
	// NVLink flap). Jobs resident on the GPU are killed; the device itself
	// recovers immediately, so no capacity is revoked.
	GPUFailPerDay float64

	// JobCrashPerDay is the per-job crash-on-step rate while running.
	JobCrashPerDay float64

	// MaxRetries bounds how many times a killed job is requeued before it is
	// marked Failed. Negative means unlimited retries.
	MaxRetries int

	// BackoffSec is the base requeue delay after a kill; it doubles per
	// restart (capped at MaxBackoffSec), so crash-looping jobs back off
	// exponentially instead of thrashing the queue.
	BackoffSec    int64
	MaxBackoffSec int64

	// RestoreSec is the cold-start debt charged when a killed job restarts
	// from a checkpoint. Jobs with no checkpoint restart from zero and pay
	// nothing — the non-intrusive rule (PAPER.md A2) means Lucid never
	// forced a checkpoint on them.
	RestoreSec float64

	// StragglerFrac of nodes (chosen deterministically from Seed) run at
	// StragglerSlowdown × their nominal per-GPU speed (0 < slowdown ≤ 1).
	StragglerFrac     float64
	StragglerSlowdown float64
}

// DefaultSpec returns failure rates calibrated to the ranges reported for
// large production GPU clusters: a node falls over about once every 20 days,
// repairs take 30 minutes, transient GPU faults are an order of magnitude
// rarer per device, and an average job crashes about once every four days of
// running. Retries and backoff mirror common cluster-manager defaults.
func DefaultSpec() Spec {
	return Spec{
		Seed:              1,
		NodeFailPerDay:    0.05,
		RepairSec:         1800,
		GPUFailPerDay:     0.005,
		JobCrashPerDay:    0.25,
		MaxRetries:        3,
		BackoffSec:        300,
		MaxBackoffSec:     4 * 3600,
		RestoreSec:        62,
		StragglerFrac:     0,
		StragglerSlowdown: 1,
	}
}

// Validate reports the first configuration error, or nil.
func (s Spec) Validate() error {
	switch {
	case s.NodeFailPerDay < 0:
		return fmt.Errorf("chaos: nodefail rate %g < 0", s.NodeFailPerDay)
	case s.GPUFailPerDay < 0:
		return fmt.Errorf("chaos: gpufail rate %g < 0", s.GPUFailPerDay)
	case s.JobCrashPerDay < 0:
		return fmt.Errorf("chaos: jobcrash rate %g < 0", s.JobCrashPerDay)
	case s.RepairSec < 0:
		return fmt.Errorf("chaos: repair %d < 0", s.RepairSec)
	case s.BackoffSec < 0:
		return fmt.Errorf("chaos: backoff %d < 0", s.BackoffSec)
	case s.MaxBackoffSec < 0:
		return fmt.Errorf("chaos: maxbackoff %d < 0", s.MaxBackoffSec)
	case s.RestoreSec < 0:
		return fmt.Errorf("chaos: restore %g < 0", s.RestoreSec)
	case s.StragglerFrac < 0 || s.StragglerFrac > 1:
		return fmt.Errorf("chaos: stragglers %g outside [0,1]", s.StragglerFrac)
	case s.StragglerSlowdown <= 0 || s.StragglerSlowdown > 1:
		return fmt.Errorf("chaos: slowdown %g outside (0,1]", s.StragglerSlowdown)
	}
	return nil
}

// Enabled reports whether the spec can produce any fault at all. A disabled
// spec is equivalent to running without an injector.
func (s Spec) Enabled() bool {
	return s.NodeFailPerDay > 0 || s.GPUFailPerDay > 0 || s.JobCrashPerDay > 0 ||
		(s.StragglerFrac > 0 && s.StragglerSlowdown < 1)
}

// String renders the spec in the canonical key=value form ParseSpec accepts,
// omitting nothing, so ParseSpec(s.String()) round-trips exactly.
func (s Spec) String() string {
	return fmt.Sprintf(
		"seed=%d,nodefail=%s,repair=%d,gpufail=%s,jobcrash=%s,retries=%d,"+
			"backoff=%d,maxbackoff=%d,restore=%s,stragglers=%s,slowdown=%s",
		s.Seed, ftoa(s.NodeFailPerDay), s.RepairSec, ftoa(s.GPUFailPerDay),
		ftoa(s.JobCrashPerDay), s.MaxRetries, s.BackoffSec, s.MaxBackoffSec,
		ftoa(s.RestoreSec), ftoa(s.StragglerFrac), ftoa(s.StragglerSlowdown))
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseSpec parses a comma-separated key=value fault spec, e.g.
//
//	"seed=7,nodefail=0.1,jobcrash=0.5,retries=3"
//
// Unset keys keep their DefaultSpec values. The literal "default" (or "")
// yields DefaultSpec unchanged; "off" yields a zero-rate spec. Keys:
// seed, nodefail, repair, gpufail, jobcrash, retries, backoff, maxbackoff,
// restore, stragglers, slowdown.
func ParseSpec(text string) (Spec, error) {
	s := DefaultSpec()
	text = strings.TrimSpace(text)
	switch text {
	case "", "default":
		return s, nil
	case "off":
		s.NodeFailPerDay, s.GPUFailPerDay, s.JobCrashPerDay = 0, 0, 0
		s.StragglerFrac = 0
		return s, nil
	}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "nodefail":
			s.NodeFailPerDay, err = parseRate(val)
		case "repair":
			s.RepairSec, err = parseSecs(val)
		case "gpufail":
			s.GPUFailPerDay, err = parseRate(val)
		case "jobcrash":
			s.JobCrashPerDay, err = parseRate(val)
		case "retries":
			s.MaxRetries, err = strconv.Atoi(val)
		case "backoff":
			s.BackoffSec, err = parseSecs(val)
		case "maxbackoff":
			s.MaxBackoffSec, err = parseSecs(val)
		case "restore":
			s.RestoreSec, err = parseRate(val)
		case "stragglers":
			s.StragglerFrac, err = parseRate(val)
		case "slowdown":
			s.StragglerSlowdown, err = parseRate(val)
		default:
			return Spec{}, fmt.Errorf("chaos: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: bad value for %s: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// parseRate parses a non-negative finite float.
func parseRate(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f != f || f < 0 || f > 1e18 {
		return 0, fmt.Errorf("%q out of range", val)
	}
	return f, nil
}

func parseSecs(val string) (int64, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Fault-kind salts for the sampling hash. Distinct constants keep the four
// Bernoulli families statistically independent under one seed.
const (
	kindNodeFail uint64 = 0xA11CE<<16 + 1
	kindGPUFail  uint64 = 0xA11CE<<16 + 2
	kindJobCrash uint64 = 0xA11CE<<16 + 3
)

// mix64 is the splitmix64 output function (same constants as
// internal/xrand), used here as a stateless hash.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns a deterministic uniform value in [0,1) for one (kind, entity,
// tick) trial under the spec's seed.
func (inj *Injector) roll(kind uint64, entity int, tick int64) float64 {
	h := mix64(inj.spec.Seed + 0x9e3779b97f4a7c15)
	h = mix64(h ^ kind)
	h = mix64(h ^ uint64(entity)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(tick)*0xbf58476d1ce4e5b9)
	return float64(h>>11) / (1 << 53)
}

// prob converts a per-day rate to a per-tick Bernoulli probability.
func prob(perDay float64, dt int64) float64 {
	p := perDay * float64(dt) / 86400
	if p > 1 {
		return 1
	}
	return p
}

// Injector samples the fault schedule for one simulation run. It is bound to
// a cluster size by Bind (called from sim.New), holds only the down-node
// clock and the straggler set, and is not safe for concurrent use — each
// run gets its own Injector, exactly as each run gets its own Cluster.
type Injector struct {
	spec      Spec
	numNodes  int
	perNode   int
	downUntil map[int]int64 // node → repair-completion time
	straggler map[int]bool
}

// NewInjector returns an unbound injector for the spec.
func NewInjector(spec Spec) *Injector {
	return &Injector{spec: spec}
}

// Spec returns the injector's configuration.
func (inj *Injector) Spec() Spec { return inj.spec }

// Bind (re)attaches the injector to a cluster shape and resets all mutable
// fault state, so a reused injector starts every run from the same schedule.
// The straggler set is a deterministic function of (seed, numNodes).
func (inj *Injector) Bind(numNodes, gpusPerNode int) {
	inj.numNodes = numNodes
	inj.perNode = gpusPerNode
	inj.downUntil = make(map[int]int64)
	inj.straggler = make(map[int]bool)
	if inj.spec.StragglerFrac > 0 && inj.spec.StragglerSlowdown < 1 {
		// Rank nodes by a per-node hash and degrade the lowest-ranked
		// fraction: deterministic, order-independent, and uniform.
		want := int(float64(numNodes)*inj.spec.StragglerFrac + 0.5)
		type ranked struct {
			node int
			key  uint64
		}
		rs := make([]ranked, numNodes)
		for n := 0; n < numNodes; n++ {
			h := mix64(inj.spec.Seed ^ 0x57a661e5)
			rs[n] = ranked{n, mix64(h ^ uint64(n)*0x9e3779b97f4a7c15)}
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].key != rs[j].key {
				return rs[i].key < rs[j].key
			}
			return rs[i].node < rs[j].node
		})
		for i := 0; i < want && i < numNodes; i++ {
			inj.straggler[rs[i].node] = true
		}
	}
}

// DownState returns the injector's only mutable fault state — the node →
// repair-completion clock — as a snapshot copy. The straggler set is a pure
// function of (seed, cluster shape) and is rebuilt by Bind, so it needs no
// serialization.
func (inj *Injector) DownState() map[int]int64 {
	if len(inj.downUntil) == 0 {
		return nil
	}
	out := make(map[int]int64, len(inj.downUntil))
	for n, until := range inj.downUntil {
		out[n] = until
	}
	return out
}

// SetDownState overwrites the down-node clock from a snapshot. Call after
// Bind (Bind resets the clock).
func (inj *Injector) SetDownState(m map[int]int64) {
	inj.downUntil = make(map[int]int64, len(m))
	for n, until := range m {
		inj.downUntil[n] = until
	}
}

// Repairs returns (and forgets) the sorted set of nodes whose repair window
// has elapsed by now.
func (inj *Injector) Repairs(now int64) []int {
	if len(inj.downUntil) == 0 {
		return nil
	}
	var out []int
	for n, until := range inj.downUntil {
		if until <= now {
			out = append(out, n)
		}
	}
	for _, n := range out {
		delete(inj.downUntil, n)
	}
	sort.Ints(out)
	return out
}

// NodeCrashes samples this tick's node crashes among currently-up nodes,
// marks them down until now+RepairSec, and returns them sorted.
func (inj *Injector) NodeCrashes(now, dt int64) []int {
	if inj.spec.NodeFailPerDay <= 0 || inj.numNodes == 0 {
		return nil
	}
	p := prob(inj.spec.NodeFailPerDay, dt)
	var out []int
	for n := 0; n < inj.numNodes; n++ {
		if _, down := inj.downUntil[n]; down {
			continue
		}
		if inj.roll(kindNodeFail, n, now) < p {
			inj.downUntil[n] = now + inj.spec.RepairSec
			out = append(out, n)
		}
	}
	return out
}

// Read-only peeks for the event engine (internal/sim's discrete-event mode):
// it scans the deterministic fault schedule ahead of the clock to find the
// next tick it must execute. Peeks must not mutate injector state — at the
// fire tick the regular sampling methods run and draw the same hashes.

// MinDownUntil returns the earliest repair-completion time among down nodes.
func (inj *Injector) MinDownUntil() (int64, bool) {
	if len(inj.downUntil) == 0 {
		return 0, false
	}
	first := true
	var min int64
	for _, until := range inj.downUntil {
		if first || until < min {
			min = until
			first = false
		}
	}
	return min, true
}

// AnyNodeCrash reports whether NodeCrashes(now, dt) would return a non-empty
// set, without marking anything down.
func (inj *Injector) AnyNodeCrash(now, dt int64) bool {
	if inj.spec.NodeFailPerDay <= 0 || inj.numNodes == 0 {
		return false
	}
	p := prob(inj.spec.NodeFailPerDay, dt)
	for n := 0; n < inj.numNodes; n++ {
		if _, down := inj.downUntil[n]; down {
			continue
		}
		if inj.roll(kindNodeFail, n, now) < p {
			return true
		}
	}
	return false
}

// AnyGPUFailure reports whether GPUFailures(now, dt) would return a fault
// the caller considers observable (resident jobs on an up node — idle-GPU
// faults have no effect and must not wake the engine).
func (inj *Injector) AnyGPUFailure(now, dt int64, observable func(cluster.GPUID) bool) bool {
	if inj.spec.GPUFailPerDay <= 0 || inj.numNodes == 0 || inj.perNode == 0 {
		return false
	}
	p := prob(inj.spec.GPUFailPerDay, dt)
	for n := 0; n < inj.numNodes; n++ {
		if _, down := inj.downUntil[n]; down {
			continue
		}
		for i := 0; i < inj.perNode; i++ {
			if inj.roll(kindGPUFail, n*inj.perNode+i, now) < p &&
				observable(cluster.GPUID{Node: n, Index: i}) {
				return true
			}
		}
	}
	return false
}

// AnyJobCrash reports whether JobCrashes(now, dt, ids) would be non-empty.
func (inj *Injector) AnyJobCrash(now, dt int64, ids []int) bool {
	if inj.spec.JobCrashPerDay <= 0 || len(ids) == 0 {
		return false
	}
	p := prob(inj.spec.JobCrashPerDay, dt)
	for _, id := range ids {
		if inj.roll(kindJobCrash, id, now) < p {
			return true
		}
	}
	return false
}

// NodeIsDown reports the injector's view of a node's health (used to skip
// GPU faults on already-dead nodes).
func (inj *Injector) NodeIsDown(node int) bool {
	_, down := inj.downUntil[node]
	return down
}

// GPUFailures samples this tick's transient GPU faults on up nodes, in
// (node, index) order.
func (inj *Injector) GPUFailures(now, dt int64) []cluster.GPUID {
	if inj.spec.GPUFailPerDay <= 0 || inj.numNodes == 0 || inj.perNode == 0 {
		return nil
	}
	p := prob(inj.spec.GPUFailPerDay, dt)
	var out []cluster.GPUID
	for n := 0; n < inj.numNodes; n++ {
		if _, down := inj.downUntil[n]; down {
			continue
		}
		for i := 0; i < inj.perNode; i++ {
			if inj.roll(kindGPUFail, n*inj.perNode+i, now) < p {
				out = append(out, cluster.GPUID{Node: n, Index: i})
			}
		}
	}
	return out
}

// JobCrashes samples crash-on-step faults over the given job ids (which the
// caller supplies sorted — the returned slice preserves that order). Because
// each (job, tick) trial is an independent hash, the result does not depend
// on which other jobs happen to be running.
func (inj *Injector) JobCrashes(now, dt int64, ids []int) []int {
	if inj.spec.JobCrashPerDay <= 0 || len(ids) == 0 {
		return nil
	}
	p := prob(inj.spec.JobCrashPerDay, dt)
	var out []int
	for _, id := range ids {
		if inj.roll(kindJobCrash, id, now) < p {
			out = append(out, id)
		}
	}
	return out
}

// SpeedFactor returns the straggler degradation for a node (1.0 = nominal).
func (inj *Injector) SpeedFactor(node int) float64 {
	if inj == nil || !inj.straggler[node] {
		return 1
	}
	return inj.spec.StragglerSlowdown
}

// Backoff returns the requeue delay for a job's restarts-th restart
// (1-based): BackoffSec doubled per prior restart, capped at MaxBackoffSec.
func (s Spec) Backoff(restarts int) int64 {
	if s.BackoffSec <= 0 {
		return 0
	}
	shift := restarts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 30 {
		shift = 30
	}
	d := s.BackoffSec << uint(shift)
	if s.MaxBackoffSec > 0 && d > s.MaxBackoffSec {
		d = s.MaxBackoffSec
	}
	return d
}
