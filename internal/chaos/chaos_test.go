package chaos

import (
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	for _, text := range []string{"", "default"} {
		got, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if got != DefaultSpec() {
			t.Fatalf("ParseSpec(%q) = %+v, want DefaultSpec", text, got)
		}
	}
	off, err := ParseSpec("off")
	if err != nil {
		t.Fatal(err)
	}
	if off.Enabled() {
		t.Fatalf("off spec reports Enabled: %+v", off)
	}
}

func TestParseSpecOverrides(t *testing.T) {
	s, err := ParseSpec("seed=7, nodefail=0.5 ,jobcrash=2,retries=-1,backoff=10,slowdown=0.25,stragglers=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.NodeFailPerDay != 0.5 || s.JobCrashPerDay != 2 ||
		s.MaxRetries != -1 || s.BackoffSec != 10 ||
		s.StragglerSlowdown != 0.25 || s.StragglerFrac != 0.5 {
		t.Fatalf("overrides not applied: %+v", s)
	}
	// Unset keys keep defaults.
	if s.RepairSec != DefaultSpec().RepairSec || s.RestoreSec != DefaultSpec().RestoreSec {
		t.Fatalf("defaults clobbered: %+v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, text := range []string{
		"nodefail",       // not key=value
		"bogus=1",        // unknown key
		"nodefail=-1",    // negative rate
		"nodefail=abc",   // unparseable
		"slowdown=0",     // outside (0,1]
		"slowdown=1.5",   // outside (0,1]
		"stragglers=2",   // outside [0,1]
		"repair=-5",      // negative window
		"seed=-1",        // seeds are unsigned
		"nodefail=NaN",   // non-finite
		"jobcrash=1e300", // absurd rate
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		DefaultSpec(),
		{Seed: 42, NodeFailPerDay: 0.125, RepairSec: 60, GPUFailPerDay: 0.01,
			JobCrashPerDay: 3.5, MaxRetries: -1, BackoffSec: 1, MaxBackoffSec: 7200,
			RestoreSec: 10.5, StragglerFrac: 0.25, StragglerSlowdown: 0.8},
	}
	for _, want := range specs {
		got, err := ParseSpec(want.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip: %+v != %+v", got, want)
		}
	}
}

func TestBackoffExponentialWithCap(t *testing.T) {
	s := Spec{BackoffSec: 100, MaxBackoffSec: 1000}
	want := []int64{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := s.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := (Spec{}).Backoff(3); got != 0 {
		t.Fatalf("zero-base backoff = %d, want 0", got)
	}
	// Huge restart counts must not overflow the shift.
	if got := s.Backoff(100); got != 1000 {
		t.Fatalf("Backoff(100) = %d, want cap 1000", got)
	}
}

// collectSchedule replays the injector tick by tick and returns a compact
// rendering of every fault it fires.
func collectSchedule(spec Spec, nodes, perNode int, ticks int, dt int64) string {
	inj := NewInjector(spec)
	inj.Bind(nodes, perNode)
	jobs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var sb strings.Builder
	for i := 1; i <= ticks; i++ {
		now := int64(i) * dt
		for _, n := range inj.Repairs(now) {
			sb.WriteString("R")
			sb.WriteByte(byte('0' + n%10))
		}
		for _, n := range inj.NodeCrashes(now, dt) {
			sb.WriteString("N")
			sb.WriteByte(byte('0' + n%10))
		}
		for _, g := range inj.GPUFailures(now, dt) {
			sb.WriteString("G")
			sb.WriteByte(byte('0' + (g.Node*perNode+g.Index)%10))
		}
		for _, id := range inj.JobCrashes(now, dt, jobs) {
			sb.WriteString("J")
			sb.WriteByte(byte('0' + id%10))
		}
	}
	return sb.String()
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	spec := DefaultSpec()
	spec.NodeFailPerDay = 50
	spec.GPUFailPerDay = 10
	spec.JobCrashPerDay = 40
	spec.RepairSec = 120

	a := collectSchedule(spec, 4, 8, 500, 30)
	b := collectSchedule(spec, 4, 8, 500, 30)
	if a == "" {
		t.Fatal("schedule empty — rates too low for the test to mean anything")
	}
	if a != b {
		t.Fatal("same seed produced different fault schedules")
	}

	spec2 := spec
	spec2.Seed = spec.Seed + 1
	if c := collectSchedule(spec2, 4, 8, 500, 30); c == a {
		t.Fatal("different seeds produced identical fault schedules")
	}

	// Rebinding resets mutable state: a reused injector replays identically.
	inj := NewInjector(spec)
	inj.Bind(4, 8)
	inj.NodeCrashes(30, 30) // perturb
	inj.Bind(4, 8)
	first := NewInjector(spec)
	first.Bind(4, 8)
	for i := 1; i <= 100; i++ {
		now := int64(i) * 30
		got := inj.NodeCrashes(now, 30)
		want := first.NodeCrashes(now, 30)
		if len(got) != len(want) {
			t.Fatal("rebind did not reset the schedule")
		}
	}
}

func TestCrashRepairLifecycle(t *testing.T) {
	spec := DefaultSpec()
	spec.NodeFailPerDay = 86400 // p = 1 every tick: all nodes crash at once
	spec.RepairSec = 100
	inj := NewInjector(spec)
	inj.Bind(2, 8)

	crashed := inj.NodeCrashes(30, 30)
	if len(crashed) != 2 {
		t.Fatalf("crashed = %v, want both nodes", crashed)
	}
	if !inj.NodeIsDown(0) || !inj.NodeIsDown(1) {
		t.Fatal("nodes not marked down")
	}
	// Down nodes neither re-crash nor suffer GPU faults.
	if again := inj.NodeCrashes(60, 30); len(again) != 0 {
		t.Fatalf("down nodes crashed again: %v", again)
	}
	spec2 := spec
	spec2.GPUFailPerDay = 86400
	if faults := inj.GPUFailures(60, 30); len(faults) != 0 {
		t.Fatalf("GPU faults on down nodes: %v", faults)
	}
	// Before the window: no repairs. After: both, and capacity returns.
	if r := inj.Repairs(100); len(r) != 0 {
		t.Fatalf("premature repairs: %v", r)
	}
	if r := inj.Repairs(130); len(r) != 2 {
		t.Fatalf("repairs = %v, want both nodes", r)
	}
	if inj.NodeIsDown(0) {
		t.Fatal("node still down after repair")
	}
}

func TestStragglerSelection(t *testing.T) {
	spec := DefaultSpec()
	spec.StragglerFrac = 0.25
	spec.StragglerSlowdown = 0.5
	inj := NewInjector(spec)
	inj.Bind(8, 8)
	slow := 0
	for n := 0; n < 8; n++ {
		switch inj.SpeedFactor(n) {
		case 0.5:
			slow++
		case 1:
		default:
			t.Fatalf("node %d speed %v", n, inj.SpeedFactor(n))
		}
	}
	if slow != 2 {
		t.Fatalf("%d stragglers of 8 nodes, want 2 (frac 0.25)", slow)
	}
	// Selection is a pure function of (seed, cluster size).
	inj2 := NewInjector(spec)
	inj2.Bind(8, 8)
	for n := 0; n < 8; n++ {
		if inj.SpeedFactor(n) != inj2.SpeedFactor(n) {
			t.Fatal("straggler selection not deterministic")
		}
	}
	// A nil injector (chaos off) is full speed everywhere.
	var none *Injector
	if none.SpeedFactor(0) != 1 {
		t.Fatal("nil injector must report nominal speed")
	}
}

func TestRateScalesWithTickSize(t *testing.T) {
	// The per-tick probability must scale with dt so fault density is
	// tick-size independent: counting faults at dt=30 vs dt=60 over the same
	// horizon should land within a factor of ~1.5 of each other.
	spec := DefaultSpec()
	spec.JobCrashPerDay = 100
	inj := NewInjector(spec)
	inj.Bind(1, 8)
	jobs := []int{1, 2, 3, 4}
	count := func(dt int64) int {
		total := 0
		for now := dt; now <= 86400; now += dt {
			total += len(inj.JobCrashes(now, dt, jobs))
		}
		return total
	}
	c30, c60 := count(30), count(60)
	if c30 == 0 || c60 == 0 {
		t.Fatalf("no faults sampled: c30=%d c60=%d", c30, c60)
	}
	ratio := float64(c30) / float64(c60)
	if ratio < 0.66 || ratio > 1.5 {
		t.Fatalf("fault density tick-dependent: %d @30s vs %d @60s", c30, c60)
	}
}
