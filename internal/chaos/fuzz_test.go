package chaos

import "testing"

// FuzzParseChaosSpec hammers the -chaos spec parser with arbitrary input.
// Properties: ParseSpec never panics; any spec it accepts validates clean
// and survives a String→ParseSpec round trip unchanged (the canonical-form
// contract lucidsim relies on when echoing the active spec).
func FuzzParseChaosSpec(f *testing.F) {
	f.Add("")
	f.Add("default")
	f.Add("off")
	f.Add("seed=7,nodefail=0.1,jobcrash=0.5,retries=3")
	f.Add("nodefail=1e3,repair=60,gpufail=0.01,backoff=30,maxbackoff=600")
	f.Add("stragglers=0.5,slowdown=0.7,restore=62")
	f.Add("seed=18446744073709551615")
	f.Add("nodefail=-1")
	f.Add("slowdown=0")
	f.Add(",,,")
	f.Add("seed==3")
	f.Add("nodefail=0.1,nodefail=0.2")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec: %v", text, verr)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", s.String(), err)
		}
		if again != s {
			t.Fatalf("round trip diverged: %+v != %+v (via %q)", again, s, s.String())
		}
	})
}
