// Chaos property tests: randomized fault schedules through every in-tree
// scheduler with the engine's fatal InvariantChecker armed. Faults stress
// exactly the paths the fault-free property tests never reach — capacity
// revocation mid-placement, kills of packed and distributed jobs, requeue
// churn through the profiler — so any scheduler or engine state that cannot
// survive a shrinking cluster fails loudly here.
//
// External test package: the schedulers (sched, core) import sim, which
// imports chaos, so these tests cannot live in package chaos.
package chaos_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func propSpec() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc0", Nodes: 2}, {Name: "vc1", Nodes: 2}}}
}

// randomTrace mirrors the sim property-test generator: adversarial variety
// in demand (incl. distributed), duration and burstiness.
func randomTrace(r *xrand.RNG, n int) *trace.Trace {
	cfgs := workload.AllConfigs()
	demands := []int{1, 1, 2, 2, 4, 8, 16}
	vcs := []string{"vc0", "vc1"}
	jobs := make([]*job.Job, n)
	submit := int64(0)
	for i := 0; i < n; i++ {
		submit += r.Int63n(900)
		dur := 30 + r.Int63n(20000)
		cfg := cfgs[r.Intn(len(cfgs))]
		jobs[i] = job.New(i+1, fmt.Sprintf("job-%d", i+1), "u", vcs[r.Intn(len(vcs))],
			demands[r.Intn(len(demands))], submit, dur, cfg)
	}
	return &trace.Trace{Name: "chaos-prop", Cluster: propSpec(), Jobs: jobs, Days: 1}
}

var propModels struct {
	sync.Once
	m   *core.Models
	err error
}

func lucidModels(t *testing.T) *core.Models {
	t.Helper()
	propModels.Do(func() {
		spec := trace.Venus()
		spec.Name = "chaos-prop"
		spec.Nodes = 4
		spec.NumVCs = 2
		spec.NumJobs = 600
		spec.Days = 3
		hist := trace.NewGenerator(spec).Emit(600)
		propModels.m, propModels.err = core.TrainModels(hist, core.DefaultConfig())
	})
	if propModels.err != nil {
		t.Fatal(propModels.err)
	}
	return propModels.m
}

func propSchedulers(t *testing.T) []struct {
	name string
	mk   func() (sim.Scheduler, sim.Options)
} {
	opts := sim.Options{Tick: 30, SchedulerEvery: 60}
	lucidOpts := opts
	lucidOpts.ProfilerNodes = 1
	models := lucidModels(t)
	return []struct {
		name string
		mk   func() (sim.Scheduler, sim.Options)
	}{
		{"FIFO", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), opts }},
		{"SJF", func() (sim.Scheduler, sim.Options) { return sched.NewSJF(), opts }},
		{"QSSF", func() (sim.Scheduler, sim.Options) { return sched.NewQSSF(sched.OracleEstimator{}), opts }},
		{"Tiresias", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), opts }},
		{"Lucid", func() (sim.Scheduler, sim.Options) {
			return core.New(models.Clone(), core.DefaultConfig()), lucidOpts
		}},
	}
}

// chaosSpecFor derives a randomized-but-reproducible fault spec from a seed:
// heavy enough that node crashes, GPU faults, job crashes and exhaustions
// all actually occur within the one-day trace.
func chaosSpecFor(seed uint64) chaos.Spec {
	r := xrand.New(seed * 977)
	spec := chaos.DefaultSpec()
	spec.Seed = seed
	spec.NodeFailPerDay = 2 + r.Float64()*6
	spec.RepairSec = 300 + r.Int63n(1800)
	spec.GPUFailPerDay = r.Float64() * 2
	spec.JobCrashPerDay = 2 + r.Float64()*8
	spec.MaxRetries = int(r.Int63n(4)) // 0..3: exhaustion is reachable
	spec.BackoffSec = 30 + r.Int63n(300)
	spec.MaxBackoffSec = 3600
	spec.StragglerFrac = r.Float64() * 0.5
	spec.StragglerSlowdown = 0.5 + r.Float64()*0.5
	return spec
}

// TestChaosSchedulerInvariants drives every scheduler over randomized
// workloads and randomized fault schedules with the fatal invariant checker
// armed, then audits the run for the chaos-specific conservation laws:
//
//   - no lost jobs: every job ends Finished, Failed, or in a legal waiting/
//     running state at the horizon — never an orphaned allocation;
//   - the kill ledger balances: kills = requeues + exhausted;
//   - AttainedGPUT is conserved across kill/requeue: service equals
//     RunTime × GPUs exactly, killed or not (kills must not refund or
//     double-charge GPU-time).
func TestChaosSchedulerInvariants(t *testing.T) {
	for _, ps := range propSchedulers(t) {
		ps := ps
		t.Run(ps.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				r := xrand.New(seed)
				tr := randomTrace(r, 120)
				s, opts := ps.mk()
				opts.Invariants = sim.NewInvariantChecker(true)
				opts.Chaos = chaos.NewInjector(chaosSpecFor(seed))
				res := sim.New(tr, s, opts).Run()
				if res.Violations > 0 {
					t.Fatalf("seed %d: %d violations: %v", seed, res.Violations, res.ViolationSamples)
				}
				if res.JobKills == 0 {
					t.Fatalf("seed %d: fault schedule never fired", seed)
				}
				if res.JobKills != res.Requeues+res.FailedJobs {
					t.Fatalf("seed %d: kill ledger unbalanced: kills=%d requeues=%d failed=%d",
						seed, res.JobKills, res.Requeues, res.FailedJobs)
				}
				terminal := 0
				for _, j := range res.Jobs {
					switch j.State {
					case job.Finished, job.Failed:
						terminal++
					case job.Pending, job.Queued, job.Running, job.Profiling:
						// Legal at the horizon.
					default:
						t.Fatalf("seed %d: job %d lost in state %v", seed, j.ID, j.State)
					}
					if j.State == job.Failed && j.Restarts == 0 {
						t.Fatalf("seed %d: job %d Failed without a kill", seed, j.ID)
					}
					if want := j.RunTime * float64(j.GPUs); math.Abs(j.AttainedGPUT-want) > 1e-6*(1+want) {
						t.Fatalf("seed %d: job %d AttainedGPUT=%v, want RunTime×GPUs=%v (service not conserved)",
							seed, j.ID, j.AttainedGPUT, want)
					}
				}
				if terminal == 0 {
					t.Fatalf("seed %d: nothing terminal — degenerate run", seed)
				}
			}
		})
	}
}

// runDigest runs FIFO under one (trace seed, chaos spec) pair and returns
// the decision-trace digest.
func runDigest(t *testing.T, traceSeed uint64, spec chaos.Spec) string {
	t.Helper()
	tr := randomTrace(xrand.New(traceSeed), 100)
	rec := dtrace.New()
	rec.SetKeep(0)
	opts := sim.Options{Tick: 30, SchedulerEvery: 60, DecisionTrace: rec,
		Invariants: sim.NewInvariantChecker(true),
		Chaos:      chaos.NewInjector(spec)}
	res := sim.New(tr, sched.NewFIFO(), opts).Run()
	if res.Violations > 0 {
		t.Fatalf("violations: %v", res.ViolationSamples)
	}
	if res.JobKills == 0 {
		t.Fatal("fault schedule never fired — digest comparison is vacuous")
	}
	return rec.Digest()
}

// TestChaosDeterminism: same seed + same fault spec → byte-identical
// decision traces; a different chaos seed over the identical workload →
// a different trace.
func TestChaosDeterminism(t *testing.T) {
	spec := chaosSpecFor(5)
	a := runDigest(t, 9, spec)
	b := runDigest(t, 9, spec)
	if a != b {
		t.Fatalf("same seed+spec digests differ: %s vs %s", a, b)
	}
	other := spec
	other.Seed++
	if c := runDigest(t, 9, other); c == a {
		t.Fatal("different chaos seeds produced identical traces")
	}
}
