package workload

// SharingScore is the ternary packing-friendliness category §3.5.1 assigns
// to each job: Tiny jobs hardly slow partners down, Jumbo jobs demand
// caution, Medium sits between.
type SharingScore int

const (
	Tiny   SharingScore = 0
	Medium SharingScore = 1
	Jumbo  SharingScore = 2
)

// String returns the category name used throughout the paper.
func (s SharingScore) String() string {
	switch s {
	case Tiny:
		return "Tiny"
	case Medium:
		return "Medium"
	case Jumbo:
		return "Jumbo"
	default:
		return "Invalid"
	}
}

// Thresholds are the (Medium, Tiny) normalized-speed cut points of §3.5.1.
// A config whose average effect on partners is ≥ Tiny is Tiny; ≥ Medium is
// Medium; below is Jumbo. §4.5 picks (0.85, 0.95) as the default because it
// "well balances job packing opportunity and interference".
type Thresholds struct {
	Medium float64
	Tiny   float64
}

// DefaultThresholds is the paper's default (0.85, 0.95).
var DefaultThresholds = Thresholds{Medium: 0.85, Tiny: 0.95}

// GroundTruthScore computes the config's true Sharing Score by the paper's
// labeling procedure: measure colocation against every Table 1 configuration
// and average the *partner's* normalized speed — i.e. how much this config
// hurts others (§3.5.1: "assign a Sharing Score to each model configuration
// based on its colocation influence on others").
func GroundTruthScore(c Config, th Thresholds) SharingScore {
	avg := MeanPartnerSpeed(c)
	switch {
	case avg >= th.Tiny:
		return Tiny
	case avg >= th.Medium:
		return Medium
	default:
		return Jumbo
	}
}

// MeanPartnerSpeed returns the average normalized speed partners retain when
// colocated with c, over all Table 1 configurations.
func MeanPartnerSpeed(c Config) float64 {
	sum, n := 0.0, 0
	for _, p := range AllConfigs() {
		_, sp := PairSpeed(c, p) // sp = partner's speed
		sum += sp
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// LabeledExample is one row of the Packing Analyze Model's training set: the
// non-intrusive profile features plus the ground-truth category.
type LabeledExample struct {
	Profile Profile
	Score   SharingScore
}

// LabeledDataset builds the characterization dataset the Packing Analyze
// Model trains on: every Table 1 configuration with its ground-truth Sharing
// Score under the given thresholds.
func LabeledDataset(th Thresholds) []LabeledExample {
	configs := AllConfigs()
	out := make([]LabeledExample, 0, len(configs))
	for _, c := range configs {
		out = append(out, LabeledExample{Profile: c.Profile(), Score: GroundTruthScore(c, th)})
	}
	return out
}
