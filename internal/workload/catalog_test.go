package workload

import (
	"testing"
	"testing/quick"
)

func TestAllConfigsValid(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) == 0 {
		t.Fatal("empty catalog")
	}
	for _, c := range cfgs {
		if !c.Valid() {
			t.Errorf("catalog produced invalid config %v", c)
		}
	}
}

func TestCatalogCoversTable1(t *testing.T) {
	// Table 1: 14 models. Count cells: 8 models × 3 batches × 2 AMP = 48,
	// BERT 1×2=2, LSTM 2×2=4, Transformer 2×1=2, PPO 3, TD3 3, NeuMF 2×2=4.
	want := 8*3*2 + 2 + 4 + 2 + 3 + 3 + 4
	if got := len(AllConfigs()); got != want {
		t.Fatalf("catalog has %d configs, want %d", got, want)
	}
}

func TestAMPRestrictedModels(t *testing.T) {
	for _, m := range []Model{Transformer, PPO, TD3} {
		if m.AMPAllowed() {
			t.Errorf("%s should not allow AMP per Table 1", m.Name())
		}
		c := Config{Model: m, BatchSize: m.BatchSizes()[0], AMP: true}
		if c.Valid() {
			t.Errorf("AMP config for %s should be invalid", m.Name())
		}
	}
}

func TestBERTSingleBatch(t *testing.T) {
	if got := BERT.BatchSizes(); len(got) != 1 || got[0] != 32 {
		t.Fatalf("BERT batch sizes = %v, want [32]", got)
	}
}

func TestProfileRanges(t *testing.T) {
	for _, c := range AllConfigs() {
		p := c.Profile()
		if p.GPUUtil <= 0 || p.GPUUtil > 99 {
			t.Errorf("%v: GPU util %v out of range", c, p.GPUUtil)
		}
		if p.GPUMemMB <= 0 || p.GPUMemMB > GPUMemMBCap {
			t.Errorf("%v: mem %v out of range", c, p.GPUMemMB)
		}
		if p.GPUMemUtil <= 0 || p.GPUMemUtil > 99 {
			t.Errorf("%v: mem util %v out of range", c, p.GPUMemUtil)
		}
		if p.AMP != c.AMP {
			t.Errorf("%v: profile AMP flag mismatch", c)
		}
	}
}

func TestProfileBatchMonotonic(t *testing.T) {
	// Bigger batches never use less memory or utilization.
	for m := Model(0); m < Model(NumModels); m++ {
		bs := m.BatchSizes()
		for i := 1; i < len(bs); i++ {
			lo := Config{Model: m, BatchSize: bs[i-1]}.Profile()
			hi := Config{Model: m, BatchSize: bs[i]}.Profile()
			if hi.GPUMemMB < lo.GPUMemMB {
				t.Errorf("%s: memory decreased with batch size", m.Name())
			}
			if hi.GPUUtil < lo.GPUUtil {
				t.Errorf("%s: utilization decreased with batch size", m.Name())
			}
		}
	}
}

func TestAMPReducesFootprint(t *testing.T) {
	// Figure 2b: AMP improves packing because it shrinks the profile.
	for _, c := range AllConfigs() {
		if c.AMP || !c.Model.AMPAllowed() {
			continue
		}
		amp := Config{Model: c.Model, BatchSize: c.BatchSize, AMP: true}
		p0, p1 := c.Profile(), amp.Profile()
		if p1.GPUUtil >= p0.GPUUtil {
			t.Errorf("%v: AMP did not reduce GPU util", c)
		}
		if p1.GPUMemMB >= p0.GPUMemMB {
			t.Errorf("%v: AMP did not reduce memory", c)
		}
	}
}

func TestConfigByName(t *testing.T) {
	c, ok := ConfigByName("ResNet-18", 64, false)
	if !ok || c.Model != ResNet18 {
		t.Fatalf("lookup failed: %v %v", c, ok)
	}
	if _, ok := ConfigByName("ResNet-18", 999, false); ok {
		t.Fatal("invalid batch size accepted")
	}
	if _, ok := ConfigByName("NoSuchModel", 64, false); ok {
		t.Fatal("unknown model accepted")
	}
	if _, ok := ConfigByName("PPO", 64, true); ok {
		t.Fatal("AMP PPO accepted despite Table 1 forbidding it")
	}
}

func TestDomainStrings(t *testing.T) {
	seen := map[string]bool{}
	for m := Model(0); m < Model(NumModels); m++ {
		s := m.Domain().String()
		if s == "unknown" {
			t.Errorf("%s has unknown domain", m.Name())
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected 8 distinct domains, got %d", len(seen))
	}
}

func TestConfigStringStable(t *testing.T) {
	c := Config{Model: ResNet18, BatchSize: 64, AMP: true}
	if got := c.String(); got != "ResNet-18/CIFAR-10 bs=64 amp=1" {
		t.Fatalf("String() = %q", got)
	}
}

func TestValidRejectsOutOfRangeModel(t *testing.T) {
	check := func(m int16, b uint8) bool {
		c := Config{Model: Model(m), BatchSize: int(b)}
		if m < 0 || int(m) >= NumModels {
			return !c.Valid()
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
