package workload

import (
	"testing"

	"repro/internal/xrand"
)

func TestScoreCategoriesAllPresent(t *testing.T) {
	counts := map[SharingScore]int{}
	for _, c := range AllConfigs() {
		counts[GroundTruthScore(c, DefaultThresholds)]++
	}
	for _, s := range []SharingScore{Tiny, Medium, Jumbo} {
		if counts[s] == 0 {
			t.Errorf("no config labeled %v; distribution: %v", s, counts)
		}
	}
}

func TestScoreOrdering(t *testing.T) {
	// PPO (near idle) must be Tiny; BERT (95 % util, bandwidth heavy) must
	// not be Tiny.
	ppo := GroundTruthScore(cfg(PPO, 64, false), DefaultThresholds)
	if ppo != Tiny {
		t.Errorf("PPO labeled %v, want Tiny", ppo)
	}
	bert := GroundTruthScore(cfg(BERT, 32, false), DefaultThresholds)
	if bert == Tiny {
		t.Errorf("BERT labeled Tiny; it saturates the GPU")
	}
}

func TestMeanPartnerSpeedBounds(t *testing.T) {
	for _, c := range AllConfigs() {
		v := MeanPartnerSpeed(c)
		if v <= 0 || v > 1 {
			t.Fatalf("%v: mean partner speed %v out of (0,1]", c, v)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Loosening thresholds can only move labels toward Tiny.
	loose := Thresholds{Medium: 0.75, Tiny: 0.90}
	for _, c := range AllConfigs() {
		d := GroundTruthScore(c, DefaultThresholds)
		l := GroundTruthScore(c, loose)
		if l > d {
			t.Errorf("%v: looser thresholds produced stricter label (%v > %v)", c, l, d)
		}
	}
}

func TestLabeledDataset(t *testing.T) {
	ds := LabeledDataset(DefaultThresholds)
	if len(ds) != len(AllConfigs()) {
		t.Fatalf("dataset size %d != catalog size %d", len(ds), len(AllConfigs()))
	}
	for _, ex := range ds {
		if ex.Score < Tiny || ex.Score > Jumbo {
			t.Fatalf("invalid score %v", ex.Score)
		}
	}
}

func TestScoreStrings(t *testing.T) {
	if Tiny.String() != "Tiny" || Medium.String() != "Medium" || Jumbo.String() != "Jumbo" {
		t.Fatal("bad score strings")
	}
	if SharingScore(9).String() != "Invalid" {
		t.Fatal("out-of-range score should stringify as Invalid")
	}
}

func TestLearnCurveSaturates(t *testing.T) {
	rng := xrand.New(1)
	curve := EfficientNetCurve.Generate(200, false, 1, rng)
	if len(curve) != 200 {
		t.Fatal("wrong length")
	}
	best := Best(curve)
	if best < 88.5 || best > 91.5 {
		t.Fatalf("best accuracy %v, want ≈89.84", best)
	}
	// Later epochs must beat early ones on average.
	early := mean(curve[:20])
	late := mean(curve[180:])
	if late <= early {
		t.Fatalf("no learning: early=%v late=%v", early, late)
	}
}

func TestAdaptiveTrainingDegradesAccuracy(t *testing.T) {
	// Figure 14b: Pollux's adaptive batch sizing costs >2 accuracy points.
	rng1, rng2 := xrand.New(2), xrand.New(2)
	plain := Best(EfficientNetCurve.Generate(200, false, 1, rng1))
	adaptive := Best(EfficientNetCurve.Generate(200, true, 4, rng2))
	if plain-adaptive < 1.0 {
		t.Fatalf("adaptive training should degrade accuracy: plain=%v adaptive=%v", plain, adaptive)
	}
}

func TestAdaptivePenaltyMonotone(t *testing.T) {
	if AdaptiveBatchPenalty(1) != 0 || AdaptiveBatchPenalty(0.5) != 0 {
		t.Fatal("no penalty at or below 1× inflation")
	}
	if AdaptiveBatchPenalty(2) >= AdaptiveBatchPenalty(4) {
		t.Fatal("penalty must grow with inflation")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
