// Package workload models the DL training workloads of Table 1 in the Lucid
// paper and the colocation interference behaviour characterized in §2.3
// (Figures 2, 3 and 5).
//
// The paper measured these models on real RTX 3090 GPUs; this package is the
// synthetic substitute: every (model, dataset, batch size, AMP) configuration
// carries a resource profile — GPU utilization, GPU memory footprint and GPU
// memory utilization, the three non-intrusive metrics Lucid's profiler
// collects — and an analytic interference model converts two profiles into
// the pair's normalized training speeds. Constants are calibrated so the
// published artifacts reproduce in shape: the Figure 2a fitted curve passes
// ≈0.92 at 100 % accumulated utilization, low-utilization partners (PointNet,
// PPO) barely slow ResNet-18 down while DCGAN and a second ResNet-18 cost it
// ~35–40 % (Figure 3a), and mixed-precision training packs better
// (Figure 2b).
package workload

import (
	"fmt"
	"math"
)

// Domain is the task domain of a workload (the symbol column of Table 1).
type Domain int

const (
	DomainImgClassification Domain = iota // ✽ image classification
	DomainImgTranslation                  // ❃ image-to-image translation
	DomainPointCloud                      // ❉ 3D point cloud classification
	DomainQA                              // ♦ question answering
	DomainLM                              // ✦ language modeling
	DomainTranslation                     // ◆ language translation
	DomainRL                              // ❖ physics control (Box2D)
	DomainRecommendation                  // ★ movie recommendation
)

// String returns a short human-readable domain name.
func (d Domain) String() string {
	switch d {
	case DomainImgClassification:
		return "img-classification"
	case DomainImgTranslation:
		return "img-translation"
	case DomainPointCloud:
		return "point-cloud"
	case DomainQA:
		return "question-answering"
	case DomainLM:
		return "language-modeling"
	case DomainTranslation:
		return "translation"
	case DomainRL:
		return "reinforcement-learning"
	case DomainRecommendation:
		return "recommendation"
	default:
		return "unknown"
	}
}

// Model identifies one of the fourteen Table 1 models.
type Model int

const (
	ResNet50 Model = iota
	MobileNetV3
	ResNet18
	MobileNetV2
	EfficientNet
	VGG11
	DCGAN
	PointNet
	BERT
	LSTM
	Transformer
	PPO
	TD3
	NeuMF
	numModels
)

// NumModels is the number of distinct models in the catalog.
const NumModels = int(numModels)

// modelSpec is the static, per-model portion of the catalog.
type modelSpec struct {
	name       string
	dataset    string
	domain     Domain
	batches    []int // allowed batch sizes (Table 1)
	ampAllowed bool  // whether a mixed-precision variant exists

	// Base resource profile at batch size 64 without AMP. Utilization
	// values are percentages; memory is MB on a 24 GB GPU.
	baseUtil    float64
	baseMemMB   float64
	baseMemUtil float64

	// iterScale loosely captures relative per-iteration cost; trace
	// generation uses it to bias which models get long durations.
	iterScale float64
}

var modelSpecs = [numModels]modelSpec{
	ResNet50:     {"ResNet-50", "ImageNet", DomainImgClassification, []int{32, 64, 128}, true, 92, 14000, 60, 3.0},
	MobileNetV3:  {"MobileNetV3", "ImageNet", DomainImgClassification, []int{32, 64, 128}, true, 74, 9000, 44, 2.2},
	ResNet18:     {"ResNet-18", "CIFAR-10", DomainImgClassification, []int{32, 64, 128}, true, 62, 2600, 40, 1.0},
	MobileNetV2:  {"MobileNetV2", "CIFAR-10", DomainImgClassification, []int{32, 64, 128}, true, 55, 2800, 34, 0.9},
	EfficientNet: {"EfficientNet", "CIFAR-10", DomainImgClassification, []int{32, 64, 128}, true, 88, 6200, 54, 1.5},
	VGG11:        {"VGG-11", "CIFAR-10", DomainImgClassification, []int{32, 64, 128}, true, 71, 4600, 48, 1.2},
	DCGAN:        {"DCGAN", "LSUN", DomainImgTranslation, []int{32, 64, 128}, true, 80, 5400, 56, 1.4},
	PointNet:     {"PointNet", "ShapeNet", DomainPointCloud, []int{32, 64, 128}, true, 22, 2000, 14, 0.7},
	BERT:         {"BERT", "SQuAD", DomainQA, []int{32}, true, 95, 16500, 64, 4.0},
	LSTM:         {"LSTM", "Wikitext2", DomainLM, []int{64, 128}, true, 50, 3100, 70, 0.8},
	Transformer:  {"Transformer", "Multi30k", DomainTranslation, []int{32, 64}, false, 66, 5200, 50, 1.3},
	PPO:          {"PPO", "LunarLander", DomainRL, []int{32, 64, 128}, false, 11, 1200, 7, 0.4},
	TD3:          {"TD3", "BipedalWalker", DomainRL, []int{32, 64, 128}, false, 15, 1400, 9, 0.4},
	NeuMF:        {"NeuMF", "MovieLens", DomainRecommendation, []int{64, 128}, true, 36, 2300, 38, 0.6},
}

// Name returns the model's display name ("ResNet-18").
func (m Model) Name() string { return modelSpecs[m].name }

// Dataset returns the dataset the model trains on in Table 1.
func (m Model) Dataset() string { return modelSpecs[m].dataset }

// Domain returns the model's task domain.
func (m Model) Domain() Domain { return modelSpecs[m].domain }

// BatchSizes returns the batch sizes Table 1 lists for the model.
func (m Model) BatchSizes() []int { return modelSpecs[m].batches }

// AMPAllowed reports whether Table 1 lists a mixed-precision variant.
func (m Model) AMPAllowed() bool { return modelSpecs[m].ampAllowed }

// IterScale returns the model's relative per-iteration cost.
func (m Model) IterScale() float64 { return modelSpecs[m].iterScale }

// Config is one training configuration: a (model, batch size, AMP) cell of
// Table 1. Configs are the unit the profiler characterizes and the packing
// analyzer classifies.
type Config struct {
	Model     Model
	BatchSize int
	AMP       bool
}

// String renders the config like "ResNet-18/CIFAR-10 bs=64 amp=0".
func (c Config) String() string {
	amp := 0
	if c.AMP {
		amp = 1
	}
	return fmt.Sprintf("%s/%s bs=%d amp=%d", c.Model.Name(), c.Model.Dataset(), c.BatchSize, amp)
}

// Valid reports whether the config is a cell of Table 1.
func (c Config) Valid() bool {
	if c.Model < 0 || c.Model >= numModels {
		return false
	}
	spec := modelSpecs[c.Model]
	if c.AMP && !spec.ampAllowed {
		return false
	}
	for _, b := range spec.batches {
		if b == c.BatchSize {
			return true
		}
	}
	return false
}

// Profile is the non-intrusive resource profile of a config on one GPU —
// exactly the three metrics Lucid's profiler reads from NVIDIA-SMI/DCGM
// (§3.2), plus the AMP flag users may optionally declare (§3.5.1).
type Profile struct {
	GPUUtil    float64 // % of time ≥1 kernel is resident
	GPUMemMB   float64 // memory footprint, MB
	GPUMemUtil float64 // % of time memory is read/written
	AMP        bool
}

// GPUMemMBCap is the memory capacity of the simulated RTX 3090 GPUs.
const GPUMemMBCap = 24000

// Profile returns the config's resource profile. Utilization grows mildly
// with batch size (bigger batches keep the SMs busier), memory grows roughly
// linearly with activations, and AMP trims both (Tensor-Core math shortens
// kernels and halves activation precision).
func (c Config) Profile() Profile {
	spec := modelSpecs[c.Model]
	scale := float64(c.BatchSize) / 64.0
	util := spec.baseUtil * pow025(scale)
	mem := spec.baseMemMB * (0.55 + 0.45*scale)
	memUtil := spec.baseMemUtil * pow025(scale)
	if c.AMP {
		util *= 0.85
		mem *= 0.70
		memUtil *= 0.90
	}
	return Profile{
		GPUUtil:    clamp(util, 1, 99),
		GPUMemMB:   clamp(mem, 100, GPUMemMBCap),
		GPUMemUtil: clamp(memUtil, 0.5, 99),
		AMP:        c.AMP,
	}
}

func pow025(x float64) float64 {
	return math.Sqrt(math.Sqrt(x))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AllConfigs enumerates every Table 1 cell, in deterministic order.
func AllConfigs() []Config {
	var out []Config
	for m := Model(0); m < numModels; m++ {
		spec := modelSpecs[m]
		for _, b := range spec.batches {
			out = append(out, Config{Model: m, BatchSize: b})
			if spec.ampAllowed {
				out = append(out, Config{Model: m, BatchSize: b, AMP: true})
			}
		}
	}
	return out
}

// ConfigByName looks up a model by display name; ok is false if unknown.
func ConfigByName(name string, batch int, amp bool) (Config, bool) {
	for m := Model(0); m < numModels; m++ {
		if modelSpecs[m].name == name {
			c := Config{Model: m, BatchSize: batch, AMP: amp}
			if c.Valid() {
				return c, true
			}
			return Config{}, false
		}
	}
	return Config{}, false
}
