package workload

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func cfg(m Model, b int, amp bool) Config { return Config{Model: m, BatchSize: b, AMP: amp} }

func TestCurveAt100(t *testing.T) {
	// Figure 2a: the fitted curve passes ≈0.92 at accumulated util 100 %.
	if got := FittedCurve(100); math.Abs(got-0.92) > 0.001 {
		t.Fatalf("curve(100) = %v, want 0.92", got)
	}
}

func TestCurveMonotoneDecreasing(t *testing.T) {
	prev := FittedCurve(0)
	for u := 5.0; u <= 200; u += 5 {
		cur := FittedCurve(u)
		if cur > prev+1e-9 {
			t.Fatalf("curve not monotone at u=%v: %v > %v", u, cur, prev)
		}
		prev = cur
	}
	if FittedCurve(0) != 1 {
		t.Fatal("curve(0) != 1")
	}
}

func TestPairSpeedBounds(t *testing.T) {
	check := func(ai, bi uint16) bool {
		cfgs := AllConfigs()
		a := cfgs[int(ai)%len(cfgs)]
		b := cfgs[int(bi)%len(cfgs)]
		sa, sb := PairSpeed(a, b)
		return sa > 0 && sa <= 1 && sb > 0 && sb <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairSpeedSymmetricAPI(t *testing.T) {
	// PairSpeed(a,b) and PairSpeed(b,a) must describe the same physical
	// colocation with roles swapped.
	cfgs := AllConfigs()
	for i := 0; i < len(cfgs); i += 7 {
		for j := 0; j < len(cfgs); j += 11 {
			a, b := cfgs[i], cfgs[j]
			sa1, sb1 := PairSpeed(a, b)
			sb2, sa2 := PairSpeed(b, a)
			if math.Abs(sa1-sa2) > 1e-9 || math.Abs(sb1-sb2) > 1e-9 {
				t.Fatalf("asymmetric result for %v + %v", a, b)
			}
		}
	}
}

func TestFigure3aShape(t *testing.T) {
	// Figure 3a (batch 64, AMP=0): ResNet-18 barely degrades with PointNet
	// or PPO, but loses ~35-40 % against DCGAN or another ResNet-18.
	rn18 := cfg(ResNet18, 64, false)

	easy := []Config{cfg(PointNet, 64, false), cfg(PPO, 64, false)}
	for _, p := range easy {
		s, _ := PairSpeed(rn18, p)
		if s < 0.90 {
			t.Errorf("ResNet-18 + %s: speed %v, want ≥0.90", p.Model.Name(), s)
		}
	}

	hard := []Config{cfg(DCGAN, 64, false), rn18}
	for _, p := range hard {
		s, _ := PairSpeed(rn18, p)
		if s > 0.80 {
			t.Errorf("ResNet-18 + %s: speed %v, want noticeable degradation (≤0.80)", p.Model.Name(), s)
		}
		if s < 0.45 {
			t.Errorf("ResNet-18 + %s: speed %v, implausibly low", p.Model.Name(), s)
		}
	}
}

func TestFigure3aAsymmetry(t *testing.T) {
	// ResNet-18 + LSTM is asymmetric in the paper (0.59 vs 0.79): the job
	// demanding more compute (ResNet-18) suffers more under time-slicing.
	rn18 := cfg(ResNet18, 64, false)
	lstm := cfg(LSTM, 64, false)
	sRN, sLSTM := PairSpeed(rn18, lstm)
	if sRN <= 0 || sLSTM <= 0 {
		t.Fatal("non-positive speed")
	}
	if sRN >= sLSTM {
		t.Errorf("expected compute-heavy ResNet-18 to suffer more: RN18=%v LSTM=%v", sRN, sLSTM)
	}
	if math.Abs(sRN-sLSTM) < 0.02 {
		t.Errorf("pair should be visibly asymmetric: RN18=%v LSTM=%v", sRN, sLSTM)
	}
}

func TestFigure2bAMPBenefit(t *testing.T) {
	// Figure 2b: enabling AMP on both jobs improves average packing speed.
	for _, m := range []Model{ResNet50, ResNet18, EfficientNet, VGG11} {
		plain := cfg(m, 64, false)
		amp := cfg(m, 64, true)
		s0a, s0b := PairSpeed(plain, plain)
		s1a, s1b := PairSpeed(amp, amp)
		if (s1a+s1b)/2 <= (s0a+s0b)/2 {
			t.Errorf("%s: AMP pair speed %v not better than plain %v",
				m.Name(), (s1a+s1b)/2, (s0a+s0b)/2)
		}
	}
}

func TestLowUtilJobProtected(t *testing.T) {
	// A near-idle job (PPO, ~11 % util) keeps ≥0.9 speed against anything.
	ppo := cfg(PPO, 64, false)
	for _, c := range AllConfigs() {
		s, _ := PairSpeed(ppo, c)
		if s < 0.85 {
			t.Errorf("PPO vs %v: speed %v, near-idle jobs should be protected", c, s)
		}
	}
}

func TestTrioAcuteDegradation(t *testing.T) {
	// §2.3: three-job packing "typically suffers from acute speed
	// degradation" — strictly worse than the corresponding pair.
	a, b, c := cfg(ResNet18, 64, false), cfg(MobileNetV2, 64, false), cfg(VGG11, 64, false)
	pa, _ := PairSpeed(a, b)
	ta, tb, tc := TrioSpeed(a, b, c)
	if ta >= pa {
		t.Errorf("trio speed %v not worse than pair speed %v", ta, pa)
	}
	for _, s := range []float64{ta, tb, tc} {
		if s <= 0 || s > 1 {
			t.Errorf("trio speed %v out of bounds", s)
		}
	}
}

func TestMeasureAllPairsCount(t *testing.T) {
	n := len(AllConfigs())
	want := n * (n + 1) / 2
	ms := MeasureAllPairs()
	if len(ms) != want {
		t.Fatalf("MeasureAllPairs returned %d, want %d", len(ms), want)
	}
}

func TestMeasurementConsistency(t *testing.T) {
	for _, m := range MeasureAllPairs() {
		if math.Abs(m.AvgSpeed-(m.SpeedA+m.SpeedB)/2) > 1e-9 {
			t.Fatal("AvgSpeed inconsistent")
		}
		pa, pb := m.A.Profile(), m.B.Profile()
		if math.Abs(m.AccumUtil-(pa.GPUUtil+pb.GPUUtil)) > 1e-9 {
			t.Fatal("AccumUtil inconsistent")
		}
		if m.InterferenceFree != (m.AvgSpeed >= InterferenceFreeThreshold) {
			t.Fatal("InterferenceFree flag inconsistent")
		}
	}
}

func TestFitQuadraticRecoversCurve(t *testing.T) {
	// Fitting the synthetic measurements must land near the generating curve
	// at u=100: Figure 2a's "Speed=0.92" annotation.
	ms := MeasureAllPairs()
	c0, c1, c2 := FitQuadratic(ms)
	at100 := c0 + c1*1 + c2*1
	if at100 < 0.82 || at100 > 0.97 {
		t.Fatalf("fitted curve at 100%% = %v, want ≈0.92 (±)", at100)
	}
	// And must slope downward overall.
	at0 := c0
	at180 := c0 + c1*1.8 + c2*1.8*1.8
	if at180 >= at0 {
		t.Fatalf("fitted curve not decreasing: f(0)=%v f(180)=%v", at0, at180)
	}
}

func TestMostMeasuredPairsRetain80PctAtSaturation(t *testing.T) {
	// §2.3: "When the GPU utilization summation reaches 100 %, most jobpairs
	// can still obtain over 0.8× speed."
	near := 0
	ok := 0
	for _, m := range MeasureAllPairs() {
		if m.AccumUtil >= 90 && m.AccumUtil <= 115 {
			near++
			if m.AvgSpeed > 0.8 {
				ok++
			}
		}
	}
	if near == 0 {
		t.Fatal("no measurements near saturation")
	}
	if frac := float64(ok) / float64(near); frac < 0.6 {
		t.Fatalf("only %.0f%% of near-saturation pairs keep >0.8 speed", frac*100)
	}
}

func TestCrossNodeAndTrioConstants(t *testing.T) {
	if CrossNodePenalty >= 1 || CrossNodePenalty <= 0 {
		t.Fatal("CrossNodePenalty out of (0,1)")
	}
	if TrioPenalty >= 1 || TrioPenalty <= 0 {
		t.Fatal("TrioPenalty out of (0,1)")
	}
}

func TestPairSpeedMemoMatchesDirect(t *testing.T) {
	// The memo table must be invisible: for every ordered catalog pair the
	// cached answer is bit-identical to computePairSpeed (the table is
	// built from it), and every pair must actually hit the table.
	cfgs := AllConfigs()
	for _, a := range cfgs {
		for _, b := range cfgs {
			ca, cb, ok := pairSpeedCached(a, b)
			if !ok {
				t.Fatalf("catalog pair %v + %v missed the memo table", a, b)
			}
			da, db := computePairSpeed(a, b)
			if ca != da || cb != db {
				t.Fatalf("memo mismatch for %v + %v: cached (%v, %v) direct (%v, %v)",
					a, b, ca, cb, da, db)
			}
			pa, pb := PairSpeed(a, b)
			if pa != ca || pb != cb {
				t.Fatalf("PairSpeed for %v + %v returned (%v, %v), cached (%v, %v)",
					a, b, pa, pb, ca, cb)
			}
		}
	}
}

func TestPairSpeedOffCatalogFallsBack(t *testing.T) {
	// A batch size the catalog doesn't carry must bypass the table and
	// still produce the direct computation's answer.
	a := cfg(ResNet18, 224, false)
	b := cfg(VGG11, 64, false)
	if _, _, ok := pairSpeedCached(a, b); ok {
		t.Fatal("off-catalog config unexpectedly tabulated")
	}
	pa, pb := PairSpeed(a, b)
	da, db := computePairSpeed(a, b)
	if pa != da || pb != db {
		t.Fatalf("fallback mismatch: PairSpeed (%v, %v) direct (%v, %v)", pa, pb, da, db)
	}
}

func TestPairSpeedConcurrentReads(t *testing.T) {
	// Exercised under -race in CI: concurrent first-touch builds and reads
	// of the memo table from many goroutines.
	cfgs := AllConfigs()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(cfgs); i++ {
				a := cfgs[(i+g)%len(cfgs)]
				b := cfgs[(i*7+g)%len(cfgs)]
				sa, sb := PairSpeed(a, b)
				if sa <= 0 || sb <= 0 {
					panic("non-positive pair speed")
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkPairSpeed(b *testing.B) {
	cfgs := AllConfigs()
	PairSpeed(cfgs[0], cfgs[1]) // build the table outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairSpeed(cfgs[i%len(cfgs)], cfgs[(i*13+1)%len(cfgs)])
	}
}

func TestPairNoiseDeterministic(t *testing.T) {
	a, b := cfg(ResNet18, 64, false), cfg(VGG11, 32, true)
	s1a, s1b := PairSpeed(a, b)
	s2a, s2b := PairSpeed(a, b)
	if s1a != s2a || s1b != s2b {
		t.Fatal("PairSpeed not deterministic")
	}
}
