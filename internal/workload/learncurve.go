package workload

import (
	"math"

	"repro/internal/xrand"
)

// LearnCurve synthesizes the validation-accuracy trajectory of a training
// job, substituting for the real EfficientNet/CIFAR-10 runs behind
// Figure 14b. The curve is a saturating exponential toward a plateau with
// small epoch-to-epoch noise.
//
// The Pollux comparison point: adaptive training scales the batch size up as
// resources allow, and large effective batches are known to land in sharper
// minima with a lower validation plateau (the paper cites Keskar et al. and
// observes a >2 % drop). AdaptiveBatchPenalty encodes that mechanism — the
// plateau drops with the log of the batch-size inflation factor.
type LearnCurve struct {
	Plateau float64 // asymptotic validation accuracy, e.g. 89.84 (%)
	Tau     float64 // epochs to reach ~63 % of the plateau gap
	Start   float64 // epoch-0 accuracy (random-ish)
	Noise   float64 // per-epoch jitter amplitude (%)
}

// EfficientNetCurve is calibrated to Figure 14b: Lucid (no tampering)
// reaches a best accuracy of 89.84 %.
var EfficientNetCurve = LearnCurve{Plateau: 89.9, Tau: 28, Start: 38, Noise: 0.5}

// AdaptiveBatchPenalty returns the plateau reduction (in accuracy points)
// caused by training at inflationFactor × the user's chosen batch size.
// inflationFactor ≤ 1 costs nothing.
func AdaptiveBatchPenalty(inflationFactor float64) float64 {
	if inflationFactor <= 1 {
		return 0
	}
	// ~2.2 points at 4× inflation, matching the 89.84 → 87.63 gap.
	return 2.2 * math.Log(inflationFactor) / math.Log(4)
}

// Generate produces accuracy per epoch for epochs 1..n. If adaptive is true
// the curve models Pollux-style batch-size adaptation ramping to
// inflationFactor over the first half of training.
func (lc LearnCurve) Generate(n int, adaptive bool, inflationFactor float64, rng *xrand.RNG) []float64 {
	out := make([]float64, n)
	plateau := lc.Plateau
	if adaptive {
		plateau -= AdaptiveBatchPenalty(inflationFactor)
	}
	for e := 0; e < n; e++ {
		base := plateau - (plateau-lc.Start)*math.Exp(-float64(e+1)/lc.Tau)
		if adaptive {
			// Batch-size jumps cause visible transient dips early on.
			phase := float64(e) / float64(n)
			if phase < 0.5 {
				base -= 1.5 * math.Sin(phase*math.Pi*4) * math.Exp(-phase*4)
			}
		}
		out[e] = base + rng.Norm(0, lc.Noise)
	}
	return out
}

// Best returns the maximum of a generated curve (the "Best: x%" annotation
// in Figure 14b).
func Best(curve []float64) float64 {
	best := math.Inf(-1)
	for _, v := range curve {
		if v > best {
			best = v
		}
	}
	return best
}
