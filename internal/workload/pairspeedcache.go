package workload

import "sync"

// The pair-speed memo table answers PairSpeed for every ordered pair of
// catalog configurations. The simulator's recomputeSpeeds re-derives the
// speed of every packed job on every tick, so over a month-long trace the
// same handful of pairs is recomputed millions of times; the table turns
// each of those into one map lookup.
//
// The table is built once, lazily, from computePairSpeed itself — cached
// answers are bit-identical to direct computation — and is immutable after
// construction, so concurrent simulations (the parallel experiment
// harness) read it without locks.
var pairSpeedTab struct {
	once sync.Once
	m    map[pairSpeedKey][2]float64
}

// pairSpeedKey identifies an ordered config pair. configKey is injective
// over catalog configs (model id, batch size and AMP bit occupy disjoint
// bit ranges), so no two pairs collide.
type pairSpeedKey struct{ a, b uint64 }

func buildPairSpeedTab() {
	cfgs := AllConfigs()
	m := make(map[pairSpeedKey][2]float64, len(cfgs)*len(cfgs))
	for _, a := range cfgs {
		for _, b := range cfgs {
			sa, sb := computePairSpeed(a, b)
			m[pairSpeedKey{configKey(a), configKey(b)}] = [2]float64{sa, sb}
		}
	}
	pairSpeedTab.m = m
}

// pairSpeedCached looks the pair up in the memo table, reporting whether
// both configs are catalog entries (only those are tabulated).
func pairSpeedCached(a, b Config) (sa, sb float64, ok bool) {
	pairSpeedTab.once.Do(buildPairSpeedTab)
	v, ok := pairSpeedTab.m[pairSpeedKey{configKey(a), configKey(b)}]
	return v[0], v[1], ok
}
