package workload

import "math"

// Interference constants, calibrated against §2.3's characterization:
//
//   - The Figure 2a least-squares fit passes ≈0.92 when the accumulated GPU
//     utilization of a jobpair reaches 100 %.
//   - Below saturation, a job's slowdown is driven by the *partner's*
//     pressure (cache/SM scheduling churn) — a near-idle partner costs
//     almost nothing, which is what makes Tiny jobs tiny.
//   - Beyond 100 % the GPU time-slices kernels. We model a work-conserving
//     (water-filling) allocation: each job receives its demand up to a fair
//     share, leftover capacity goes to the hungrier job. The job demanding
//     more compute therefore suffers more, reproducing Figure 3a's
//     asymmetric pairs (ResNet-18 at 0.59 vs LSTM at 0.79).
//   - Combined memory-bandwidth pressure adds a further slowdown once both
//     jobs are genuinely active (the scatter below the fitted curve).
//   - Packing three jobs "typically suffers from acute speed degradation"
//     (§2.3), hence TrioPenalty; distributed jobs contend on the network
//     when packed, hence CrossNodePenalty (§3.3 rule 5 exists because of
//     it).
const (
	// CurveSpeedAt100 is the average normalized speed at 100 % accumulated
	// utilization on the Figure 2a fitted curve.
	CurveSpeedAt100 = 0.92

	// curveQuad makes the symmetric-pair average hit CurveSpeedAt100 at
	// saturation: two 50 %-util jobs each lose attackQuad·0.25 = 0.08.
	curveQuad = 1 - CurveSpeedAt100

	// attackQuad scales the sub-saturation pressure a partner exerts:
	// penalty_i = attackQuad · (util_j/100)². 4·curveQuad so the symmetric
	// case lands on the curve.
	attackQuad = 4 * curveQuad

	// satOverhead is the kernel-switching efficiency once the GPU is
	// over-subscribed and must time-slice.
	satOverhead = 0.96

	// memContention scales the extra slowdown from combined memory-bandwidth
	// pressure; memBandwidthBudget is the combined memory-utilization level
	// (in %) below which bandwidth is effectively uncontended.
	memContention      = 0.30
	memBandwidthBudget = 65.0

	// TrioPenalty multiplies every job's speed when three jobs share a GPU.
	TrioPenalty = 0.55

	// CrossNodePenalty multiplies a distributed (multi-node) job's speed when
	// it is packed with another job, modeling NIC/PCIe contention.
	CrossNodePenalty = 0.85

	// pairNoiseAmp is the amplitude of the deterministic per-pair
	// "measurement noise" that gives the Figure 2a scatter its spread.
	pairNoiseAmp = 0.02
)

// FittedCurve is the Figure 2a fitted curve: the *average* normalized speed
// of a packed jobpair whose GPU utilizations sum to accumUtil percent.
// Quadratic decay to 0.92 at 100 %, then a time-slicing regime.
func FittedCurve(accumUtil float64) float64 {
	u := accumUtil
	if u <= 0 {
		return 1
	}
	if u <= 100 {
		f := u / 100
		return 1 - curveQuad*f*f
	}
	return clamp(CurveSpeedAt100*math.Pow(100/u, 0.8), 0.30, CurveSpeedAt100)
}

// pairNoise derives a small deterministic offset for a specific unordered
// pair of configs, standing in for run-to-run measurement variance.
func pairNoise(a, b Config) float64 {
	h := uint64(17)
	mix := func(v uint64) {
		h = (h ^ v) * 0x100000001b3
	}
	ka, kb := configKey(a), configKey(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	mix(ka)
	mix(kb)
	f := float64(h>>11)/(1<<53)*2 - 1
	return f * pairNoiseAmp
}

func configKey(c Config) uint64 {
	k := uint64(c.Model)<<16 | uint64(c.BatchSize)
	if c.AMP {
		k |= 1 << 40
	}
	return k
}

// PairSpeed returns the normalized training speeds (speedA, speedB) of two
// configs packed on the same GPU(s), each in (0, 1]. 1.0 means no slowdown
// versus exclusive execution.
//
// Catalog configs are answered from a read-only memo table built on first
// use (see pairspeedcache.go): the simulator re-asks for the same pair
// every tick a packed placement lives, making this the hottest call in
// recomputeSpeeds. Off-catalog configs fall back to direct computation.
func PairSpeed(a, b Config) (float64, float64) {
	if sa, sb, ok := pairSpeedCached(a, b); ok {
		return sa, sb
	}
	return computePairSpeed(a, b)
}

// computePairSpeed is the uncached pair-speed model; the memo table is
// built from it, so cached and direct answers are bit-identical.
func computePairSpeed(a, b Config) (float64, float64) {
	pa, pb := a.Profile(), b.Profile()
	return pairSpeedProfiles(pa, pb, pairNoise(a, b))
}

// PairSpeedProfiles is PairSpeed for callers that only hold measured
// profiles (e.g. the simulator, which observes jobs rather than knowing
// their catalog configs).
func PairSpeedProfiles(pa, pb Profile) (float64, float64) {
	return pairSpeedProfiles(pa, pb, 0)
}

func pairSpeedProfiles(pa, pb Profile, noise float64) (float64, float64) {
	sa := oneSideSpeed(pa, pb) + noise
	sb := oneSideSpeed(pb, pa) + noise

	// Memory-bandwidth contention: only bites when both jobs are genuinely
	// active and their combined bandwidth appetite exceeds the budget. The
	// bandwidth-hungrier job absorbs the larger share of the hit.
	memSum := pa.GPUMemUtil + pb.GPUMemUtil
	gate := clamp(math.Min(pa.GPUUtil, pb.GPUUtil)/40, 0, 1)
	total := memContention * math.Max(0, memSum-memBandwidthBudget) / 100 * gate
	if memSum > 0 && total > 0 {
		wa := pa.GPUMemUtil / memSum
		sa -= 2 * total * wa
		sb -= 2 * total * (1 - wa)
	}

	// A near-idle job slips its few kernels into gaps regardless of partner.
	sa = blendIdle(clamp(sa, 0.05, 1), pa.GPUUtil)
	sb = blendIdle(clamp(sb, 0.05, 1), pb.GPUUtil)
	return sa, sb
}

// oneSideSpeed is the compute-only speed of the job with profile p against
// partner q: the sub-saturation partner-pressure penalty, tightened by the
// water-filling share once the GPU is over-subscribed.
func oneSideSpeed(p, q Profile) float64 {
	pressure := 1 - attackQuad*(q.GPUUtil/100)*(q.GPUUtil/100)
	u := p.GPUUtil + q.GPUUtil
	if u <= 100 {
		return pressure
	}
	share := waterfill(p.GPUUtil, q.GPUUtil) / p.GPUUtil * satOverhead
	return math.Min(pressure, share)
}

// waterfill returns the compute allocation (in utilization percent) job with
// demand d receives against a partner with demand e on a 100 %-capacity GPU:
// each job gets its demand up to a fair half; surplus flows to the hungrier
// job. Assumes d+e > 100.
func waterfill(d, e float64) float64 {
	if d <= 50 {
		return d
	}
	if e <= 50 {
		return math.Min(d, 100-e)
	}
	return 50
}

// blendIdle lifts the speed of very-low-utilization jobs toward 1.
func blendIdle(s, util float64) float64 {
	if util >= 40 {
		return s
	}
	w := (40 - util) / 40
	return clamp(s+(1-s)*w*0.9, 0.05, 1)
}

// TrioSpeed returns the normalized speeds of three configs packed together.
// Per §2.3 this "typically suffers from acute speed degradation"; Lucid
// never does it, but the simulator supports it so the binder's rule 3 is
// testable.
func TrioSpeed(a, b, c Config) (float64, float64, float64) {
	ab1, ba1 := PairSpeed(a, b)
	ac1, ca1 := PairSpeed(a, c)
	bc1, cb1 := PairSpeed(b, c)
	sa := (ab1 + ac1) / 2 * TrioPenalty
	sb := (ba1 + bc1) / 2 * TrioPenalty
	sc := (ca1 + cb1) / 2 * TrioPenalty
	return clamp(sa, 0.05, 1), clamp(sb, 0.05, 1), clamp(sc, 0.05, 1)
}

// PairMeasurement is one colocation measurement: two configs, their
// normalized speeds, and the accumulated GPU utilization — one orange point
// of Figure 2a.
type PairMeasurement struct {
	A, B             Config
	SpeedA, SpeedB   float64
	AccumUtil        float64
	AvgSpeed         float64
	CombinedMemMB    float64
	WouldOOM         bool // combined footprint exceeds GPU memory
	InterferenceFree bool // avg speed ≥ 0.85 threshold used in Figure 5
}

// InterferenceFreeThreshold is the normalized-speed threshold §3.3 uses to
// call a packable jobpair "interference-free" (98.1 % of packable pairs
// clear it in the paper).
const InterferenceFreeThreshold = 0.85

// MeasureAllPairs reproduces the §2.3 characterization sweep: every
// unordered pair of Table 1 configurations (including self-pairs) is
// "measured" once. This is the training set for the Packing Analyze Model
// and the point cloud behind Figures 2a and 5.
func MeasureAllPairs() []PairMeasurement {
	configs := AllConfigs()
	var out []PairMeasurement
	for i := 0; i < len(configs); i++ {
		for j := i; j < len(configs); j++ {
			out = append(out, MeasurePair(configs[i], configs[j]))
		}
	}
	return out
}

// MeasurePair measures a single colocation.
func MeasurePair(a, b Config) PairMeasurement {
	sa, sb := PairSpeed(a, b)
	pa, pb := a.Profile(), b.Profile()
	avg := (sa + sb) / 2
	return PairMeasurement{
		A: a, B: b,
		SpeedA: sa, SpeedB: sb,
		AccumUtil:        pa.GPUUtil + pb.GPUUtil,
		AvgSpeed:         avg,
		CombinedMemMB:    pa.GPUMemMB + pb.GPUMemMB,
		WouldOOM:         pa.GPUMemMB+pb.GPUMemMB > GPUMemMBCap*0.92,
		InterferenceFree: avg >= InterferenceFreeThreshold,
	}
}

// FitQuadratic least-squares-fits speed = c0 + c1·u + c2·u² over a set of
// measurements (u = accumulated utilization / 100), reproducing the fitted
// curve overlay of Figure 2a from the synthetic point cloud.
func FitQuadratic(ms []PairMeasurement) (c0, c1, c2 float64) {
	var s [5]float64 // sums of u^k
	var t [3]float64 // sums of y·u^k
	for _, m := range ms {
		u := m.AccumUtil / 100
		y := m.AvgSpeed
		up := 1.0
		for k := 0; k < 5; k++ {
			s[k] += up
			if k < 3 {
				t[k] += y * up
			}
			up *= u
		}
	}
	a := [3][3]float64{
		{s[0], s[1], s[2]},
		{s[1], s[2], s[3]},
		{s[2], s[3], s[4]},
	}
	det := det3(a)
	if math.Abs(det) < 1e-12 {
		return 1, 0, 0
	}
	c0 = det3(replaceCol(a, 0, t)) / det
	c1 = det3(replaceCol(a, 1, t)) / det
	c2 = det3(replaceCol(a, 2, t)) / det
	return c0, c1, c2
}

func det3(a [3][3]float64) float64 {
	return a[0][0]*(a[1][1]*a[2][2]-a[1][2]*a[2][1]) -
		a[0][1]*(a[1][0]*a[2][2]-a[1][2]*a[2][0]) +
		a[0][2]*(a[1][0]*a[2][1]-a[1][1]*a[2][0])
}

func replaceCol(a [3][3]float64, col int, v [3]float64) [3][3]float64 {
	for r := 0; r < 3; r++ {
		a[r][col] = v[r]
	}
	return a
}
