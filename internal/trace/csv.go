package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/workload"
)

// csvHeader is the column layout WriteCSV emits and ReadCSV expects.
var csvHeader = []string{
	"id", "name", "user", "vc", "gpus", "submit", "duration",
	"model", "batch", "amp",
}

// WriteCSV serializes the trace's job list (cluster layout is not included;
// regenerate it from the GenSpec or record it separately).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		amp := "0"
		if j.Config.AMP {
			amp = "1"
		}
		rec := []string{
			strconv.Itoa(j.ID), j.Name, j.User, j.VC,
			strconv.Itoa(j.GPUs),
			strconv.FormatInt(j.Submit, 10),
			strconv.FormatInt(j.Duration, 10),
			j.Config.Model.Name(),
			strconv.Itoa(j.Config.BatchSize),
			amp,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses jobs previously written by WriteCSV.
func ReadCSV(r io.Reader) ([]*job.Job, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "id" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", rows[0])
	}
	jobs := make([]*job.Job, 0, len(rows)-1)
	for i, rec := range rows[1:] {
		id, err1 := strconv.Atoi(rec[0])
		gpus, err2 := strconv.Atoi(rec[4])
		submit, err3 := strconv.ParseInt(rec[5], 10, 64)
		dur, err4 := strconv.ParseInt(rec[6], 10, 64)
		batch, err5 := strconv.Atoi(rec[8])
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, fmt.Errorf("trace: row %d: %w", i+2, e)
			}
		}
		// Range validation: a malformed row must fail loudly here, not
		// surface later as a job the simulator can never place or retire.
		if gpus <= 0 {
			return nil, fmt.Errorf("trace: row %d: non-positive gpus %d", i+2, gpus)
		}
		if submit < 0 {
			return nil, fmt.Errorf("trace: row %d: negative submit %d", i+2, submit)
		}
		if dur < 0 {
			return nil, fmt.Errorf("trace: row %d: negative duration %d", i+2, dur)
		}
		cfg, ok := workload.ConfigByName(rec[7], batch, rec[9] == "1")
		if !ok {
			return nil, fmt.Errorf("trace: row %d: unknown config %s/%s", i+2, rec[7], rec[8])
		}
		jobs = append(jobs, job.New(id, rec[1], rec[2], rec[3], gpus, submit, dur, cfg))
	}
	sortBySubmit(jobs)
	return jobs, nil
}
