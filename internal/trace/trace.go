// Package trace synthesizes production DL-cluster job traces with the
// structure the Lucid paper's evaluation relies on. The real traces (Venus
// and Saturn from SenseTime's Helios, Philly from Microsoft) are proprietary
// releases we substitute with statistical generators calibrated to every
// published property the schedulers and models exploit:
//
//   - Table 2 scale: cluster size, job count, mean duration per trace.
//   - §2.2 workload skew: >95 % of jobs within a node (≤8 GPUs), ~90 %
//     recurrences of per-user templates, and a debugging majority of
//     short-lived jobs.
//   - Heavy-tailed durations (lognormal long tail out to days) — the raw
//     material of HOL blocking, which is what separates FIFO from everyone.
//   - Diurnal and weekly submission rhythms — the signal the Throughput
//     Predict Model forecasts (Figure 7b's hour shape).
//   - Skewed VC sizes and loads — why Figure 9's per-VC queueing differs.
//   - Hierarchical workload typing (§4.1): long/large jobs are big models
//     (BERT, ResNet-50), small/short jobs are light models, with the
//     Venus-L/M/H utilization variants of Figure 12a.
//
// A Generator owns a fixed population of users and job templates; emitting
// several months from one generator yields the recurrent structure the
// Workload Estimate Model learns from (train on past months, test on the
// next — the paper's April–August/September split).
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// UtilLevel selects the Figure 12a workload-utilization mix.
type UtilLevel int

const (
	// UtilLow mimics the Alibaba PAI distribution (mostly light models).
	UtilLow UtilLevel = iota
	// UtilMedium is the paper's default evaluation mix (Venus-M).
	UtilMedium
	// UtilHigh skews toward heavy models (Venus-H).
	UtilHigh
)

// String names the level as the paper does.
func (u UtilLevel) String() string {
	switch u {
	case UtilLow:
		return "L"
	case UtilMedium:
		return "M"
	case UtilHigh:
		return "H"
	default:
		return "?"
	}
}

// GenSpec configures a trace generator.
type GenSpec struct {
	Name        string
	Nodes       int // total nodes
	GPUsPerNode int // default 8
	NumVCs      int
	NumJobs     int     // jobs per emitted month
	AvgDuration float64 // target mean duration, seconds
	Days        int     // emission window length
	Util        UtilLevel
	Seed        uint64

	// DebugFrac is the fraction of short debugging/test jobs (§2.2 reports
	// the majority of jobs are short-term). Default 0.55.
	DebugFrac float64
	// RecurFrac is the probability a submission reuses an existing template
	// (~0.9 in production). Default 0.9.
	RecurFrac float64
	// TargetLoad caps the cluster-wide offered load (Σ duration·GPUs over
	// capacity·window). Production traces are feasible by construction —
	// jobs that ran did fit — so an emitted month whose synthetic load
	// exceeds the cap has all durations scaled down to it. Default 0.45.
	TargetLoad float64
}

func (s GenSpec) normalized() GenSpec {
	if s.GPUsPerNode <= 0 {
		s.GPUsPerNode = 8
	}
	if s.NumVCs <= 0 {
		s.NumVCs = 1
	}
	if s.Days <= 0 {
		s.Days = 30
	}
	if s.DebugFrac <= 0 {
		s.DebugFrac = 0.55
	}
	if s.RecurFrac <= 0 {
		s.RecurFrac = 0.9
	}
	if s.TargetLoad <= 0 {
		s.TargetLoad = 0.45
	}
	return s
}

// Venus returns the SenseTime Venus spec (Table 2: 1,080 GPUs, 23,859 jobs,
// 5,419 s mean duration, 15 VCs).
func Venus() GenSpec {
	return GenSpec{Name: "Venus", Nodes: 135, NumVCs: 15, NumJobs: 23859,
		AvgDuration: 5419, Days: 30, Util: UtilMedium, Seed: 0x7e105}
}

// Saturn returns the SenseTime Saturn spec (Table 2: 2,080 GPUs, 101,254
// jobs, 13,006 s mean duration, 20 VCs).
func Saturn() GenSpec {
	return GenSpec{Name: "Saturn", Nodes: 260, NumVCs: 20, NumJobs: 101254,
		AvgDuration: 13006, Days: 30, Util: UtilMedium, Seed: 0x5a7193}
}

// Philly returns the Microsoft Philly spec (Table 2: 864 GPUs as 108 8-GPU
// nodes, 12,389 jobs, 25,533 s mean duration, a single VC per §4.1).
func Philly() GenSpec {
	// Philly's single VC needs a hotter offered-load cap than the
	// multi-VC clusters to exhibit its published (worst-of-the-three)
	// queueing behaviour: with one big pool there is no cross-VC skew.
	return GenSpec{Name: "Philly", Nodes: 108, NumVCs: 1, NumJobs: 12389,
		AvgDuration: 25533, Days: 30, Util: UtilMedium, Seed: 0x9d111e,
		TargetLoad: 0.95}
}

// Helios returns a datacenter-scale spec calibrated against the published
// Helios characterization (Hu et al., SC '21: the SenseTime Helios
// datacenter — four clusters, 6,416 GPUs, ~3.3M GPU jobs over six months,
// i.e. ~550k jobs/month datacenter-wide, short-job-dominated with mean
// durations in the low thousands of seconds). This spec rounds the
// datacenter up to one 10,000-GPU federation replaying a million-job month —
// the scalability target the event engine is benchmarked against (-exp
// scale). It is deliberately not part of the Table 2 evaluation set.
func Helios() GenSpec {
	return GenSpec{Name: "Helios", Nodes: 1250, NumVCs: 40, NumJobs: 1_000_000,
		AvgDuration: 3600, Days: 30, Util: UtilMedium, Seed: 0x8e1105}
}

// Trace is one emitted workload: a cluster spec plus a submit-ordered job
// list.
type Trace struct {
	Name    string
	Cluster cluster.Spec
	Jobs    []*job.Job
	Days    int
}

// template is one recurring job archetype owned by a user.
type template struct {
	id         int
	name       string
	cfg        workload.Config
	gpus       int
	longMedian float64 // median duration of its non-debug runs, seconds
	pDebug     float64 // share of its submissions that are short debug runs
	uses       int
}

// user owns templates inside one VC.
type user struct {
	name      string
	vc        string
	templates []*template
}

// Generator owns the user/template population and can emit any number of
// months with consistent recurrence structure.
type Generator struct {
	spec    GenSpec
	cluster cluster.Spec
	vcs     []string
	vcJobW  []float64 // job-share weights per VC (skewed)
	users   [][]*user // per VC
	rng     *xrand.RNG

	nextJobID int
	nextTmpl  int
	emitted   int // months emitted, to vary job names across months
}

// NewGenerator builds the population deterministically from the spec seed.
func NewGenerator(spec GenSpec) *Generator {
	spec = spec.normalized()
	g := &Generator{spec: spec, rng: xrand.New(spec.Seed), nextJobID: 1}

	// VC sizes: skewed (production VCs are sized per team). Largest VCs get
	// several times the nodes of the smallest, with every VC getting at
	// least 2 nodes when the cluster allows it.
	weights := make([]float64, spec.NumVCs)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.7)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	nodesLeft := spec.Nodes
	specVCs := make([]cluster.VCSpec, spec.NumVCs)
	for i := range specVCs {
		n := int(float64(spec.Nodes) * weights[i] / total)
		if n < 1 {
			n = 1
		}
		if spec.NumVCs > 1 && n < 2 && spec.Nodes >= 2*spec.NumVCs {
			n = 2
		}
		if n > nodesLeft-(spec.NumVCs-1-i) {
			n = nodesLeft - (spec.NumVCs - 1 - i)
		}
		specVCs[i] = cluster.VCSpec{Name: fmt.Sprintf("vc%02d", i), Nodes: n}
		nodesLeft -= n
	}
	// Distribute any remainder round-robin.
	for i := 0; nodesLeft > 0; i = (i + 1) % spec.NumVCs {
		specVCs[i].Nodes++
		nodesLeft--
	}
	g.cluster = cluster.Spec{GPUsPerNode: spec.GPUsPerNode, GPUMemMB: workload.GPUMemMBCap, VCs: specVCs}

	// Job-share weights per VC: *differently* skewed than capacity, so some
	// VCs run hot (Figure 9's spread). Rotate the skew so the busiest VC is
	// not the biggest.
	// Job share ∝ VC capacity × a load-skew multiplier, so per-VC offered
	// load varies around the global mean (hot VCs ~2.5× the mean, cold VCs
	// ~0.5×) without any VC being unboundedly overloaded. The rank scatter
	// decorrelates hotness from size.
	g.vcJobW = make([]float64, spec.NumVCs)
	for i := range g.vcJobW {
		rank := (i*7 + 3) % spec.NumVCs
		m := 1 / (1 + 1.2*float64(rank))
		g.vcJobW[i] = float64(specVCs[i].Nodes) * m
	}

	// Users per VC scale with VC size.
	g.users = make([][]*user, spec.NumVCs)
	for i, vcSpec := range specVCs {
		g.vcs = append(g.vcs, vcSpec.Name)
		nu := 3 + vcSpec.Nodes/2
		if nu > 25 {
			nu = 25
		}
		for u := 0; u < nu; u++ {
			usr := &user{name: fmt.Sprintf("%s-user%02d", vcSpec.Name, u), vc: vcSpec.Name}
			// Seed each user with a couple of starting templates.
			for k := 0; k < 2; k++ {
				usr.templates = append(usr.templates, g.newTemplate(usr))
			}
			g.users[i] = append(g.users[i], usr)
		}
	}
	return g
}

// ClusterSpec returns the generated cluster layout.
func (g *Generator) ClusterSpec() cluster.Spec { return g.cluster }

// gpuDemandDist is the §2.2 small-job skew: >95 % within one 8-GPU node.
var gpuDemands = []int{1, 2, 4, 8, 16, 32}
var gpuDemandW = []float64{0.78, 0.10, 0.05, 0.037, 0.020, 0.013}

// model mixes per utilization level. Heavy models drive Venus-H; light
// models dominate the PAI-like Venus-L.
var heavyModels = []workload.Model{workload.BERT, workload.ResNet50, workload.EfficientNet, workload.VGG11, workload.DCGAN, workload.Transformer}
var lightModels = []workload.Model{workload.ResNet18, workload.MobileNetV2, workload.MobileNetV3, workload.PointNet, workload.PPO, workload.TD3, workload.NeuMF, workload.LSTM}

func (g *Generator) newTemplate(usr *user) *template {
	g.nextTmpl++
	gpus := gpuDemands[g.rng.Choice(gpuDemandW)]
	// Clamp demand to what the VC can ever host (whole nodes for the
	// distributed part), or the job would starve forever.
	vcNodes := g.vcNodesOf(usr.vc)
	maxG := vcNodes * g.spec.GPUsPerNode
	for gpus > maxG || (gpus > g.spec.GPUsPerNode && (gpus+g.spec.GPUsPerNode-1)/g.spec.GPUsPerNode > vcNodes) {
		gpus = gpuDemands[g.rng.Choice(gpuDemandW)]
	}

	// Characteristic duration: heavy lognormal tail. Median ≈ 1 h with a
	// wide sigma gives multi-day stragglers; the emit pass rescales the mix
	// to the trace's target mean.
	longMedian := g.rng.LogNormal(math.Log(3600), 1.2)
	if longMedian < 300 {
		longMedian = 300
	}
	// Duration correlates with scale: multi-GPU training runs are the long
	// ones (production GPU-time is dominated by large jobs), which is what
	// generates meaningful cluster load out of a modest mean duration.
	longMedian *= 1 + float64(gpus)*0.35

	// Debug-ness is a property of the *template*, not a coin flip per
	// submission: hyperparameter-search and production templates rarely
	// abort, while test/debug templates almost always do. This is what makes
	// duration predictable from history (§2.3) — and it matches the
	// production observation that debugging jobs are a recognizable
	// population, not random noise.
	pDebug := 0.02 + 0.13*g.rng.Float64()
	if g.rng.Bool(g.spec.DebugFrac) {
		pDebug = 0.80 + 0.15*g.rng.Float64()
	}

	// Hierarchical workload typing (§4.1): large/long templates draw from
	// the heavy models, the rest from the light set, shifted by UtilLevel.
	big := gpus >= 8 || longMedian > 4*3600
	pHeavy := 0.25
	switch g.spec.Util {
	case UtilLow:
		pHeavy = 0.08
	case UtilHigh:
		pHeavy = 0.55
	}
	if big {
		pHeavy = math.Min(1, pHeavy*2.5)
	}
	var m workload.Model
	if g.rng.Bool(pHeavy) {
		m = heavyModels[g.rng.Intn(len(heavyModels))]
	} else {
		m = lightModels[g.rng.Intn(len(lightModels))]
	}
	batches := m.BatchSizes()
	cfg := workload.Config{Model: m, BatchSize: batches[g.rng.Intn(len(batches))]}
	if m.AMPAllowed() && g.rng.Bool(0.35) {
		cfg.AMP = true
	}

	return &template{
		id:         g.nextTmpl,
		name:       fmt.Sprintf("%s-%s-t%d", usr.name, cfg.Model.Name(), g.nextTmpl),
		cfg:        cfg,
		gpus:       gpus,
		longMedian: longMedian,
		pDebug:     pDebug,
	}
}

func (g *Generator) vcNodesOf(vc string) int {
	for _, s := range g.cluster.VCs {
		if s.Name == vc {
			return s.Nodes
		}
	}
	return 0
}

// hourWeights is the diurnal submission pattern: quiet nights, morning and
// afternoon peaks — the shape the Throughput Predict Model must learn
// (Figure 7b).
var hourWeights = []float64{
	0.25, 0.18, 0.14, 0.12, 0.12, 0.15, // 0-5
	0.25, 0.45, 0.75, 1.00, 1.15, 1.10, // 6-11
	0.85, 0.95, 1.15, 1.20, 1.10, 0.95, // 12-17
	0.80, 0.70, 0.60, 0.50, 0.40, 0.30, // 18-23
}

// dayWeight damps weekends.
func dayWeight(day int) float64 {
	switch day % 7 {
	case 5, 6:
		return 0.55
	default:
		return 1.0
	}
}

// Emit generates one window of jobs. numJobs ≤ 0 uses the spec's NumJobs.
// Each call consumes generator state, so successive calls produce distinct
// months drawn from the same user/template population.
func (g *Generator) Emit(numJobs int) *Trace {
	if numJobs <= 0 {
		numJobs = g.spec.NumJobs
	}
	g.emitted++
	days := g.spec.Days

	// Build per-(day,hour) arrival weights once.
	type slot struct {
		day, hour int
	}
	slots := make([]slot, 0, days*24)
	slotW := make([]float64, 0, days*24)
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			slots = append(slots, slot{d, h})
			slotW = append(slotW, dayWeight(d)*hourWeights[h])
		}
	}

	jobs := make([]*job.Job, 0, numJobs)
	for i := 0; i < numJobs; i++ {
		vcIdx := g.rng.Choice(g.vcJobW)
		users := g.users[vcIdx]
		usr := users[g.rng.Intn(len(users))]

		var tm *template
		if g.rng.Bool(g.spec.RecurFrac) || len(usr.templates) == 0 {
			// Recurrence: Zipf over the user's templates — a few dominate.
			tm = usr.templates[g.rng.Zipf(len(usr.templates), 1.1)]
		} else {
			tm = g.newTemplate(usr)
			usr.templates = append(usr.templates, tm)
		}
		tm.uses++

		var dur float64
		if g.rng.Bool(tm.pDebug) {
			// Debug/test run: seconds to minutes.
			dur = g.rng.LogNormal(math.Log(100), 1.0)
			if dur < 10 {
				dur = 10
			}
			if dur > 900 {
				dur = 900
			}
		} else {
			dur = tm.longMedian * g.rng.LogNormal(0, 0.35)
		}

		s := slots[g.rng.Choice(slotW)]
		submit := int64(s.day)*86400 + int64(s.hour)*3600 + g.rng.Int63n(3600)

		j := job.New(g.nextJobID,
			fmt.Sprintf("%s-v%d", tm.name, tm.uses),
			usr.name, usr.vc, tm.gpus, submit, int64(dur), tm.cfg)
		g.nextJobID++
		jobs = append(jobs, j)
	}

	rescaleDurations(jobs, g.spec.AvgDuration)
	g.capPerVCLoad(jobs, days)
	capOfferedLoad(jobs, g.cluster.TotalGPUs(), days, g.spec.TargetLoad)
	sortBySubmit(jobs)
	return &Trace{
		Name:    fmt.Sprintf("%s-%s#%d", g.spec.Name, g.spec.Util, g.emitted),
		Cluster: g.cluster,
		Jobs:    jobs,
		Days:    days,
	}
}

// rescaleDurations multiplies the non-debug durations so the overall mean
// hits the Table 2 target (debug jobs stay short — that is their point).
func rescaleDurations(jobs []*job.Job, target float64) {
	if target <= 0 || len(jobs) == 0 {
		return
	}
	var debugSum, longSum float64
	var longN int
	for _, j := range jobs {
		if j.Duration <= 900 {
			debugSum += float64(j.Duration)
		} else {
			longSum += float64(j.Duration)
			longN++
		}
	}
	if longN == 0 {
		return
	}
	// target·n = debugSum + k·longSum  →  k.
	k := (target*float64(len(jobs)) - debugSum) / longSum
	if k <= 0 {
		return
	}
	for _, j := range jobs {
		if j.Duration > 900 {
			d := int64(float64(j.Duration) * k)
			if d < 901 {
				d = 901
			}
			j.Duration = d
			j.RemainingWork = float64(d)
		}
	}
}

// maxVCLoad bounds any single VC's offered load. Transiently hot VCs drive
// the queueing the schedulers are measured on, but a VC overloaded for the
// whole month would never drain and the trace would be unschedulable by any
// policy.
const maxVCLoad = 1.25

// capPerVCLoad scales down the durations of jobs in VCs whose offered load
// exceeds maxVCLoad.
func (g *Generator) capPerVCLoad(jobs []*job.Job, days int) {
	demand := map[string]float64{}
	for _, j := range jobs {
		demand[j.VC] += float64(j.Duration) * float64(j.GPUs)
	}
	window := float64(days) * 86400
	scale := map[string]float64{}
	for _, vcSpec := range g.cluster.VCs {
		cap := float64(vcSpec.Nodes*g.spec.GPUsPerNode) * window
		if d := demand[vcSpec.Name]; d > maxVCLoad*cap {
			scale[vcSpec.Name] = maxVCLoad * cap / d
		}
	}
	if len(scale) == 0 {
		return
	}
	for _, j := range jobs {
		k, ok := scale[j.VC]
		if !ok {
			continue
		}
		d := int64(float64(j.Duration) * k)
		if d < 10 {
			d = 10
		}
		j.Duration = d
		j.RemainingWork = float64(d)
	}
}

// capOfferedLoad scales durations down uniformly when the emitted month
// demands more GPU-time than TargetLoad of the cluster-window capacity.
// Table 2's mean durations and cluster sizes are not mutually consistent
// with a schedulable month under every GPU-demand mix, so feasibility wins
// over matching the published mean exactly (recorded in EXPERIMENTS.md).
func capOfferedLoad(jobs []*job.Job, totalGPUs, days int, target float64) {
	var demand float64
	for _, j := range jobs {
		demand += float64(j.Duration) * float64(j.GPUs)
	}
	capacity := float64(totalGPUs) * float64(days) * 86400
	if capacity <= 0 || demand <= target*capacity {
		return
	}
	k := target * capacity / demand
	for _, j := range jobs {
		d := int64(float64(j.Duration) * k)
		if d < 10 {
			d = 10
		}
		j.Duration = d
		j.RemainingWork = float64(d)
	}
}

func sortBySubmit(jobs []*job.Job) {
	sort.Slice(jobs, func(i, k int) bool {
		a, b := jobs[i], jobs[k]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.ID < b.ID
	})
}
