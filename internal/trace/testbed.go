package trace

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestbedSpec returns the §4.2 physical cluster: 4 servers × 8 RTX 3090
// GPUs, one VC.
func TestbedSpec() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "testbed", Nodes: 4}}}
}

// StaticTestbed generates the §4.2 static trace: numJobs (100 in the paper)
// jobs all available at time 0, sampled Venus-like. Used for the makespan
// comparison of Table 3.
func StaticTestbed(numJobs int, seed uint64) *Trace {
	rng := xrand.New(seed)
	jobs := make([]*job.Job, 0, numJobs)
	for i := 0; i < numJobs; i++ {
		jobs = append(jobs, testbedJob(i+1, 0, rng, false))
	}
	sortBySubmit(jobs)
	return &Trace{Name: "testbed-static", Cluster: TestbedSpec(), Jobs: jobs, Days: 1}
}

// ContinuousTestbed generates the §4.2 continuous trace: numJobs (120 in the
// paper) jobs arriving as a Poisson process with the given mean inter-
// arrival gap, sampling "more long-term jobs" per the paper. Used for the
// average-JCT comparison of Table 3.
func ContinuousTestbed(numJobs int, meanGapSec float64, seed uint64) *Trace {
	rng := xrand.New(seed)
	jobs := make([]*job.Job, 0, numJobs)
	t := 0.0
	for i := 0; i < numJobs; i++ {
		t += rng.Exp(meanGapSec)
		jobs = append(jobs, testbedJob(i+1, int64(t), rng, true))
	}
	sortBySubmit(jobs)
	return &Trace{Name: "testbed-continuous", Cluster: TestbedSpec(), Jobs: jobs, Days: 1}
}

// testbedJob samples one Venus-flavored job for the 32-GPU testbed.
func testbedJob(id int, submit int64, rng *xrand.RNG, longBias bool) *job.Job {
	gpus := gpuDemands[rng.Choice([]float64{0.55, 0.20, 0.15, 0.10, 0, 0})]
	var dur float64
	pDebug := 0.35
	if longBias {
		pDebug = 0.2
	}
	if rng.Bool(pDebug) {
		dur = clampF(rng.LogNormal(math.Log(90), 0.8), 20, 600)
	} else {
		median := 1800.0
		if longBias {
			median = 3000
		}
		dur = clampF(rng.LogNormal(math.Log(median), 0.8), 300, 6*3600)
	}

	heavy := rng.Bool(0.3) || gpus >= 8
	var m workload.Model
	if heavy {
		m = heavyModels[rng.Intn(len(heavyModels))]
	} else {
		m = lightModels[rng.Intn(len(lightModels))]
	}
	batches := m.BatchSizes()
	cfg := workload.Config{Model: m, BatchSize: batches[rng.Intn(len(batches))]}
	if m.AMPAllowed() && rng.Bool(0.3) {
		cfg.AMP = true
	}
	return job.New(id, "tb-job", "tb-user", "testbed", gpus, submit, int64(dur), cfg)
}

// PolluxTrace generates the §4.7 comparison workload: a 160-job base trace
// (intensity 1.0) whose submission rate scales with intensity (0.5×–2.5× in
// Figure 14a), on a 64-GPU cluster.
func PolluxTrace(intensity float64, seed uint64) *Trace {
	if intensity <= 0 {
		intensity = 1
	}
	rng := xrand.New(seed)
	numJobs := 160
	baseGap := 180.0 // seconds between submissions at intensity 1.0
	jobs := make([]*job.Job, 0, numJobs)
	t := 0.0
	for i := 0; i < numJobs; i++ {
		t += rng.Exp(baseGap / intensity)
		j := testbedJob(i+1, int64(t), rng, true)
		j.VC = "pollux"
		jobs = append(jobs, j)
	}
	sortBySubmit(jobs)
	return &Trace{
		Name: "pollux-trace",
		Cluster: cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
			VCs: []cluster.VCSpec{{Name: "pollux", Nodes: 8}}},
		Jobs: jobs,
		Days: 1,
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
