package trace

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseCSV throws arbitrary bytes at ReadCSV. The parser must never
// panic; when it accepts an input, every parsed job must satisfy the
// invariants the simulator relies on (positive GPUs, non-negative times,
// submit-sorted output) and the jobs must survive a WriteCSV → ReadCSV
// round trip.
func FuzzParseCSV(f *testing.F) {
	// A valid two-job file, straight from the writer.
	var valid bytes.Buffer
	tr := NewGenerator(Venus()).Emit(2)
	if err := tr.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	header := "id,name,user,vc,gpus,submit,duration,model,batch,amp\n"
	seeds := []string{
		"",                   // empty input
		header,               // header only
		"id,name\n1,j\n",     // wrong column count
		"bogus,first,line\n", // wrong header
		header + "1,j,u,vc,2,0,600,ResNet18,64,0\n",                                  // one good row
		header + "x,j,u,vc,2,0,600,ResNet18,64,0\n",                                  // non-numeric id
		header + "1,j,u,vc,-4,0,600,ResNet18,64,0\n",                                 // negative gpus
		header + "1,j,u,vc,0,0,600,ResNet18,64,0\n",                                  // zero gpus
		header + "1,j,u,vc,2,-60,600,ResNet18,64,0\n",                                // negative submit
		header + "1,j,u,vc,2,0,-600,ResNet18,64,0\n",                                 // negative duration
		header + "1,j,u,vc,2,0,600,NoSuchModel,64,0\n",                               // unknown model
		header + "1,j,u,vc,2,0,600,ResNet18,7,0\n",                                   // invalid batch size
		header + "1,j,u,vc,2,0,600,ResNet18,64,0,extra\n",                            // extra column
		header + "1,j,u,vc,2,0,600,ResNet18,64\n",                                    // missing column
		header + `1,"j` + "\n" + `k",u,vc,2,0,600,ResNet18,64,0` + "\n",              // quoted newline
		header + "9999999999999999999999,j,u,vc,2,0,600,ResNet18,64,0\n",             // overflow
		header + "1,j\xff\xfe,u,vc,2,0,600,ResNet18,64,0\n",                          // non-UTF8 name
		header + "1," + strings.Repeat("A", 1<<16) + ",u,vc,2,0,600,ResNet18,64,0\n", // huge field
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		prev := int64(-1)
		for i, j := range jobs {
			if j == nil {
				t.Fatalf("job %d is nil", i)
			}
			if j.GPUs <= 0 {
				t.Fatalf("job %d: accepted non-positive gpus %d", i, j.GPUs)
			}
			if j.Submit < 0 || j.Duration < 0 {
				t.Fatalf("job %d: accepted negative time (submit %d, duration %d)",
					i, j.Submit, j.Duration)
			}
			if j.Submit < prev {
				t.Fatalf("job %d: output not submit-sorted", i)
			}
			prev = j.Submit
			if !j.Config.Valid() {
				t.Fatalf("job %d: accepted invalid config %v", i, j.Config)
			}
		}
		// Round trip: anything the parser accepts must re-serialize and
		// re-parse to the same job count. Names with invalid UTF-8 are
		// exempt — encoding/csv writes them back escaped differently.
		for _, j := range jobs {
			if !utf8.ValidString(j.Name) || !utf8.ValidString(j.User) || !utf8.ValidString(j.VC) {
				return
			}
		}
		var buf bytes.Buffer
		rt := &Trace{Jobs: jobs}
		if err := rt.WriteCSV(&buf); err != nil {
			t.Fatalf("round-trip write: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip read: %v\ninput: %q", err, buf.String())
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count: %d → %d", len(jobs), len(again))
		}
	})
}
