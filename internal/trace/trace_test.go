package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallVenus is a scaled-down Venus for fast tests.
func smallVenus() GenSpec {
	s := Venus()
	s.NumJobs = 3000
	return s
}

func TestEmitBasicShape(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	if len(tr.Jobs) != 3000 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if tr.Cluster.TotalGPUs() != 1080 {
		t.Fatalf("cluster GPUs = %d, want 1080", tr.Cluster.TotalGPUs())
	}
	if len(tr.Cluster.VCs) != 15 {
		t.Fatalf("VCs = %d", len(tr.Cluster.VCs))
	}
	// Sorted by submit.
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("jobs not sorted by submit time")
		}
	}
	// All inside the window.
	for _, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= int64(tr.Days)*86400 {
			t.Fatalf("submit %d outside %d days", j.Submit, tr.Days)
		}
		if j.Duration < 10 {
			t.Fatalf("duration %d too small", j.Duration)
		}
		if !j.Config.Valid() {
			t.Fatalf("invalid config %v", j.Config)
		}
	}
}

func TestMeanDurationCalibrated(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	var sum float64
	for _, j := range tr.Jobs {
		sum += float64(j.Duration)
	}
	mean := sum / float64(len(tr.Jobs))
	if math.Abs(mean-5419)/5419 > 0.1 {
		t.Fatalf("mean duration %v, want ≈5419", mean)
	}
}

func TestSmallJobSkew(t *testing.T) {
	// §2.2: >95 % of jobs fit within one 8-GPU node.
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	small := 0
	for _, j := range tr.Jobs {
		if j.GPUs <= 8 {
			small++
		}
	}
	if frac := float64(small) / float64(len(tr.Jobs)); frac < 0.93 {
		t.Fatalf("only %.1f%% small jobs", frac*100)
	}
}

func TestDebugJobMajority(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	short := 0
	for _, j := range tr.Jobs {
		if j.Duration <= 900 {
			short++
		}
	}
	frac := float64(short) / float64(len(tr.Jobs))
	if frac < 0.4 || frac > 0.7 {
		t.Fatalf("short-job fraction %.2f outside the production band", frac)
	}
}

func TestRecurrence(t *testing.T) {
	// ~90 % of submissions reuse a template: distinct name prefixes must be
	// far fewer than jobs, and repeated prefixes must dominate.
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	prefix := func(name string) string {
		i := strings.LastIndex(name, "-v")
		if i < 0 {
			return name
		}
		return name[:i]
	}
	counts := map[string]int{}
	for _, j := range tr.Jobs {
		counts[prefix(j.Name)]++
	}
	if len(counts) > len(tr.Jobs)/3 {
		t.Fatalf("%d distinct templates for %d jobs — recurrence broken", len(counts), len(tr.Jobs))
	}
	recur := 0
	for _, c := range counts {
		if c > 1 {
			recur += c
		}
	}
	if frac := float64(recur) / float64(len(tr.Jobs)); frac < 0.8 {
		t.Fatalf("recurrent fraction %.2f, want ≥0.8", frac)
	}
}

func TestRecurrentJobsShareConfigAndGPUs(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	type key struct {
		cfg  string
		gpus int
	}
	byTemplate := map[string]key{}
	for _, j := range tr.Jobs {
		p := j.Name[:strings.LastIndex(j.Name, "-v")]
		k := key{j.Config.String(), j.GPUs}
		if prev, ok := byTemplate[p]; ok && prev != k {
			t.Fatalf("template %s changed identity: %v vs %v", p, prev, k)
		}
		byTemplate[p] = k
	}
}

func TestDiurnalPattern(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	byHour := make([]int, 24)
	for _, j := range tr.Jobs {
		byHour[(j.Submit/3600)%24]++
	}
	night := byHour[2] + byHour[3] + byHour[4]
	day := byHour[10] + byHour[14] + byHour[15]
	if day < 3*night {
		t.Fatalf("no diurnal pattern: day=%d night=%d", day, night)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := NewGenerator(smallVenus()).Emit(0)
	b := NewGenerator(smallVenus()).Emit(0)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("different job counts")
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Name != jb.Name || ja.Submit != jb.Submit || ja.Duration != jb.Duration {
			t.Fatalf("job %d differs between identical generators", i)
		}
	}
}

func TestMultiMonthSharesPopulation(t *testing.T) {
	g := NewGenerator(smallVenus())
	m1 := g.Emit(2000)
	m2 := g.Emit(2000)
	prefix := func(name string) string { return name[:strings.LastIndex(name, "-v")] }
	p1 := map[string]bool{}
	for _, j := range m1.Jobs {
		p1[prefix(j.Name)] = true
	}
	overlap := 0
	for _, j := range m2.Jobs {
		if p1[prefix(j.Name)] {
			overlap++
		}
	}
	if frac := float64(overlap) / float64(len(m2.Jobs)); frac < 0.5 {
		t.Fatalf("month-2 recurrence into month-1 templates only %.2f", frac)
	}
}

func TestDistributedJobsFitVC(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	nodesOf := map[string]int{}
	for _, vc := range tr.Cluster.VCs {
		nodesOf[vc.Name] = vc.Nodes
	}
	for _, j := range tr.Jobs {
		need := (j.GPUs + 7) / 8
		if need > nodesOf[j.VC] {
			t.Fatalf("%v needs %d nodes but VC %s has %d", j, need, j.VC, nodesOf[j.VC])
		}
	}
}

func TestUtilLevelsShiftMix(t *testing.T) {
	mean := func(u UtilLevel) float64 {
		s := smallVenus()
		s.Util = u
		tr := NewGenerator(s).Emit(0)
		sum := 0.0
		for _, j := range tr.Jobs {
			sum += j.Config.Profile().GPUUtil
		}
		return sum / float64(len(tr.Jobs))
	}
	l, m, h := mean(UtilLow), mean(UtilMedium), mean(UtilHigh)
	if !(l < m && m < h) {
		t.Fatalf("util means not ordered: L=%v M=%v H=%v", l, m, h)
	}
}

func TestPresets(t *testing.T) {
	for _, spec := range []GenSpec{Venus(), Saturn(), Philly()} {
		g := NewGenerator(spec)
		if g.ClusterSpec().TotalGPUs() != spec.Nodes*8 {
			t.Fatalf("%s GPUs = %d", spec.Name, g.ClusterSpec().TotalGPUs())
		}
	}
	if len(NewGenerator(Philly()).ClusterSpec().VCs) != 1 {
		t.Fatal("Philly must be a single VC")
	}
}

func TestStaticTestbed(t *testing.T) {
	tr := StaticTestbed(100, 1)
	if len(tr.Jobs) != 100 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	for _, j := range tr.Jobs {
		if j.Submit != 0 {
			t.Fatal("static trace jobs must all arrive at t=0")
		}
		if j.GPUs > 8 {
			t.Fatal("testbed jobs must fit one node")
		}
	}
	if tr.Cluster.TotalGPUs() != 32 {
		t.Fatalf("testbed GPUs = %d", tr.Cluster.TotalGPUs())
	}
}

func TestContinuousTestbed(t *testing.T) {
	tr := ContinuousTestbed(120, 180, 2)
	if len(tr.Jobs) != 120 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	increasing := false
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit > tr.Jobs[0].Submit {
			increasing = true
		}
	}
	if !increasing {
		t.Fatal("continuous trace has no arrival spread")
	}
}

func TestPolluxIntensityScaling(t *testing.T) {
	slow := PolluxTrace(0.5, 3)
	fast := PolluxTrace(2.5, 3)
	if len(slow.Jobs) != 160 || len(fast.Jobs) != 160 {
		t.Fatal("pollux trace must have 160 jobs")
	}
	spanSlow := slow.Jobs[len(slow.Jobs)-1].Submit
	spanFast := fast.Jobs[len(fast.Jobs)-1].Submit
	if spanFast*3 > spanSlow {
		t.Fatalf("intensity scaling wrong: slow span %d, fast span %d", spanSlow, spanFast)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := NewGenerator(smallVenus())
	tr := g.Emit(200)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(tr.Jobs) {
		t.Fatalf("round trip count %d vs %d", len(jobs), len(tr.Jobs))
	}
	for i := range jobs {
		a, b := jobs[i], tr.Jobs[i]
		if a.ID != b.ID || a.Name != b.Name || a.Submit != b.Submit ||
			a.Duration != b.Duration || a.Config != b.Config || a.GPUs != b.GPUs {
			t.Fatalf("job %d mismatch after round trip", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("nope,x\n1,2\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := "id,name,user,vc,gpus,submit,duration,model,batch,amp\n1,a,u,v,x,0,10,ResNet-18,64,0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric gpus accepted")
	}
	unknown := "id,name,user,vc,gpus,submit,duration,model,batch,amp\n1,a,u,v,1,0,10,NoModel,64,0\n"
	if _, err := ReadCSV(strings.NewReader(unknown)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLoadIsFeasible(t *testing.T) {
	// The emitted month must not demand more GPU-time than the cluster has;
	// otherwise queues grow without bound and no scheduler can finish.
	g := NewGenerator(smallVenus())
	tr := g.Emit(0)
	var demand float64
	for _, j := range tr.Jobs {
		demand += float64(j.Duration) * float64(j.GPUs)
	}
	capacity := float64(tr.Cluster.TotalGPUs()) * float64(tr.Days) * 86400
	if demand > 0.9*capacity {
		t.Fatalf("offered load %.0f%% of capacity", demand/capacity*100)
	}
}
