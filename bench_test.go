// Package repro's root benchmark suite regenerates every table and figure
// of the Lucid paper's evaluation (§4) — one testing.B entry per artifact,
// each a thin wrapper over internal/lab. Custom metrics carry the headline
// numbers (hours, R², milliseconds) alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable4 -benchtime=1x
//
// End-to-end benches run the traces at a reduced scale (benchScale) so the
// whole suite finishes in minutes; cmd/lucidbench runs the same experiments
// at any scale up to the full Table 2 workloads.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchScale is the default trace scale for end-to-end benches.
const benchScale = 0.08

// BenchmarkFig2aPairSpeed regenerates the §2.3 colocation sweep and fit.
func BenchmarkFig2aPairSpeed(b *testing.B) {
	var at100 float64
	for i := 0; i < b.N; i++ {
		at100, _ = lab.Fig2a()
	}
	b.ReportMetric(at100, "speed@100%")
}

// BenchmarkFig2bAMP measures the AMP packing benefit.
func BenchmarkFig2bAMP(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		vals, _ := lab.Fig2b()
		gain = vals[64][1] - vals[64][0]
	}
	b.ReportMetric(gain, "amp-gain@64")
}

// BenchmarkFig3Packing reproduces the Figure 3 examples.
func BenchmarkFig3Packing(b *testing.B) {
	var rnSelf float64
	for i := 0; i < b.N; i++ {
		pairs, _ := lab.Fig3a()
		for _, p := range pairs {
			if p.Partner == "ResNet-18" {
				rnSelf = p.SpeedRN
			}
		}
		lab.Fig3b()
	}
	b.ReportMetric(rnSelf, "rn18-self-speed")
}

// BenchmarkFig5Binder scores the Indolent Packing decisions.
func BenchmarkFig5Binder(b *testing.B) {
	var interferenceFree float64
	for i := 0; i < b.N; i++ {
		st, _, err := lab.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		interferenceFree = st.PackableInterferFree * 100
	}
	b.ReportMetric(interferenceFree, "%interference-free")
}

// BenchmarkFig6Tree trains and renders the Packing Analyze Model.
func BenchmarkFig6Tree(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		a, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
		if err != nil {
			b.Fatal(err)
		}
		acc = a.Accuracy() * 100
	}
	b.ReportMetric(acc, "%accuracy")
}

// BenchmarkFig7GAM produces the interpretability artifacts.
func BenchmarkFig7GAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Fig7(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Fidelity runs the physical-vs-simulation validation.
func BenchmarkTable3Fidelity(b *testing.B) {
	var worstErr float64
	for i := 0; i < b.N; i++ {
		rows, _, err := lab.Table3(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		worstErr = 0
		for _, r := range rows {
			if r.JCTErrPct > worstErr {
				worstErr = r.JCTErrPct
			}
			if r.MakespanErrPct > worstErr {
				worstErr = r.MakespanErrPct
			}
		}
	}
	b.ReportMetric(worstErr, "%worst-error")
}

// benchTable4 shares one end-to-end sweep across the Table 4 family.
func benchTable4(b *testing.B, specs []trace.GenSpec) map[string]map[string]*sim.Result {
	b.Helper()
	var results map[string]map[string]*sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, results, _, err = lab.Table4(specs, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

// BenchmarkTable4 regenerates the headline end-to-end table on all three
// clusters.
func BenchmarkTable4(b *testing.B) {
	results := benchTable4(b, []trace.GenSpec{trace.Venus(), trace.Saturn(), trace.Philly()})
	if venus, ok := results["Venus"]; ok {
		b.ReportMetric(venus["Lucid"].AvgJCTHours(), "lucid-jct-h")
		b.ReportMetric(venus["Tiresias"].AvgJCTHours(), "tiresias-jct-h")
	}
}

// BenchmarkFig8CDF regenerates the JCT CDFs (Venus only for speed).
func BenchmarkFig8CDF(b *testing.B) {
	results := benchTable4(b, []trace.GenSpec{trace.Venus()})
	if s := lab.Fig8(results); len(s) == 0 {
		b.Fatal("empty CDF report")
	}
}

// BenchmarkFig9VC regenerates the per-VC queueing analysis.
func BenchmarkFig9VC(b *testing.B) {
	results := benchTable4(b, []trace.GenSpec{trace.Venus()})
	if s := lab.Fig9(results); len(s) == 0 {
		b.Fatal("empty VC report")
	}
}

// BenchmarkTable5Scale regenerates the large-vs-small breakdown.
func BenchmarkTable5Scale(b *testing.B) {
	results := benchTable4(b, []trace.GenSpec{trace.Venus()})
	if s := lab.Table5(results["Venus"]); len(s) == 0 {
		b.Fatal("empty scale report")
	}
}

// benchTable4Workers runs the Venus Table 4 sweep with a fixed worker
// bound, dropping the world cache each iteration so serial and parallel
// iterations do identical (cold) work — the honest fan-out comparison.
func benchTable4Workers(b *testing.B, workers int) {
	b.Helper()
	lab.SetParallelism(workers)
	defer lab.SetParallelism(0)
	for i := 0; i < b.N; i++ {
		lab.ResetWorldCache()
		if _, _, _, err := lab.Table4([]trace.GenSpec{trace.Venus()}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Serial and BenchmarkTable4Parallel bracket the parallel
// harness: same sweep, worker pool of 1 vs GOMAXPROCS.
func BenchmarkTable4Serial(b *testing.B)   { benchTable4Workers(b, 1) }
func BenchmarkTable4Parallel(b *testing.B) { benchTable4Workers(b, 0) }

// BenchmarkTable4WarmCache measures the sweep once the world is memoized —
// what every experiment after the first pays per (cluster, scale) pair.
func BenchmarkTable4WarmCache(b *testing.B) {
	if _, _, _, err := lab.Table4([]trace.GenSpec{trace.Venus()}, benchScale); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := lab.Table4([]trace.GenSpec{trace.Venus()}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10aLatency measures scheduling-decision latency at 2048 jobs
// (the paper's headline scalability number).
func BenchmarkFig10aLatency(b *testing.B) {
	w, err := lab.GetWorld(trace.Venus(), benchScale)
	if err != nil {
		b.Fatal(err)
	}
	var ms float64
	for i := 0; i < b.N; i++ {
		d, err := lab.Fig10aLatency(2048, w)
		if err != nil {
			b.Fatal(err)
		}
		ms = float64(d.Microseconds()) / 1000
	}
	b.ReportMetric(ms, "ms@2048jobs")
}

// BenchmarkFig10bTraining measures model training time (Venus history).
func BenchmarkFig10bTraining(b *testing.B) {
	spec := trace.Venus()
	hist := trace.NewGenerator(spec).Emit(int(float64(spec.NumJobs) * benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainWorkloadEstimator(hist.Jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aAblation runs the component ablations.
func BenchmarkFig11aAblation(b *testing.B) {
	var fullQueue float64
	for i := 0; i < b.N; i++ {
		res, _, err := lab.Fig11a(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		fullQueue = res["Lucid"].AvgQueueSec
	}
	b.ReportMetric(fullQueue, "lucid-queue-s")
}

// BenchmarkFig11bProfiler compares space-aware vs naive profiling.
func BenchmarkFig11bProfiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Fig11b([]trace.GenSpec{trace.Venus()}, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Sensitivity sweeps the Venus-L/M/H workload mixes.
func BenchmarkFig12Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Fig12(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Tprof sweeps the profiling time limit.
func BenchmarkTable6Tprof(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table6(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Prediction regenerates the prediction visualizations.
func BenchmarkFig13Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Fig13(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7Models runs the model shoot-out.
func BenchmarkTable7Models(b *testing.B) {
	var lucidR2 float64
	for i := 0; i < b.N; i++ {
		res, _, err := lab.Table7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		lucidR2 = res.DurationR2["Lucid"]
	}
	b.ReportMetric(lucidR2, "lucid-R2")
}

// BenchmarkFig14aIntensity compares Lucid/Pollux/Tiresias under load
// scaling.
func BenchmarkFig14aIntensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.Fig14a([]float64{0.5, 1.5, 2.5}, uint64(i+5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14bAccuracy generates the adaptive-training accuracy curves.
func BenchmarkFig14bAccuracy(b *testing.B) {
	var degradation float64
	for i := 0; i < b.N; i++ {
		lucid, pollux, _ := lab.Fig14b(uint64(i + 7))
		degradation = lucid - pollux
	}
	b.ReportMetric(degradation, "accuracy-points-lost")
}

// BenchmarkUpdateInterval runs the §4.5(3) update-interval study.
func BenchmarkUpdateInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.UpdateIntervalStudy(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrchestratorSort isolates the pure decision hot path: Lucid's
// priority computation over a synthetic queue (complements Fig10a, which
// includes the simulator tick).
func BenchmarkOrchestratorSort(b *testing.B) {
	spec := trace.Venus()
	g := trace.NewGenerator(spec)
	hist := g.Emit(2000)
	est, err := core.TrainWorkloadEstimator(hist.Jobs)
	if err != nil {
		b.Fatal(err)
	}
	queue := g.Emit(2048).Jobs
	core.EnsureProfiles(queue)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range queue {
			_ = est.EstimateSec(j)
		}
	}
}
